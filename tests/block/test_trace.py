"""Tests for IO trace recording and replay."""

import io

import numpy as np
import pytest

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.block.trace import TraceRecord, TraceRecorder, TraceReplayer, load_trace
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.sim import Simulator
from repro.workloads.synthetic import PacedWorkload

SPEC = DeviceSpec(
    name="tracedev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)


def make_env():
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    layer = BlockLayer(sim, device, NoopController())
    tree = CgroupTree()
    return sim, layer, tree


class TestRecorder:
    def test_records_completed_bios(self):
        sim, layer, tree = make_env()
        recorder = TraceRecorder(layer).install()
        group = tree.create("workload.slice/app")
        PacedWorkload(sim, layer, group, rate=1000, stop_at=0.1).start()
        sim.run(until=0.2)
        assert len(recorder.records) == pytest.approx(100, abs=5)
        record = recorder.records[0]
        assert record.cgroup == "workload.slice/app"
        assert record.op == "read"
        assert record.latency > 0

    def test_chains_existing_hook(self):
        sim, layer, tree = make_env()
        seen = []
        original = layer.device.on_complete

        def extra(bio):
            original(bio)
            seen.append(bio.id)

        layer.device.on_complete = extra
        recorder = TraceRecorder(layer).install()
        group = tree.create("a")
        layer.submit(Bio(IOOp.READ, 4096, 8, group))
        sim.run(until=0.01)
        assert seen and recorder.records

    def test_install_idempotent(self):
        sim, layer, tree = make_env()
        recorder = TraceRecorder(layer).install().install()
        group = tree.create("a")
        layer.submit(Bio(IOOp.READ, 4096, 8, group))
        sim.run(until=0.01)
        assert len(recorder.records) == 1

    def test_save_load_roundtrip(self):
        sim, layer, tree = make_env()
        recorder = TraceRecorder(layer).install()
        group = tree.create("a")
        layer.submit(Bio(IOOp.WRITE, 8192, 16, group, flags=BioFlags.SWAP))
        sim.run(until=0.01)
        buffer = io.StringIO()
        count = recorder.save(buffer)
        assert count == 1
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert loaded == recorder.records
        assert loaded[0].flags == BioFlags.SWAP.value


class TestReplayer:
    def make_trace(self):
        return [
            TraceRecord(0.0, "workload.slice/app", "read", 4096, 8, 0, 1e-4),
            TraceRecord(0.01, "workload.slice/app", "write", 8192, 800, 0, 1e-4),
            TraceRecord(0.02, "system.slice", "read", 4096, 1600, 0, 1e-4),
        ]

    def test_replays_with_original_spacing(self):
        sim, layer, tree = make_env()
        replayer = TraceReplayer(sim, layer, tree, self.make_trace()).start()
        sim.run(until=0.1)
        assert replayer.submitted == 3
        assert replayer.completed == 3
        # cgroups materialised on demand.
        assert "workload.slice/app" in tree
        assert "system.slice" in tree

    def test_time_scale_stretches_arrivals(self):
        sim, layer, tree = make_env()
        replayer = TraceReplayer(
            sim, layer, tree, self.make_trace(), time_scale=10.0
        ).start()
        sim.run(until=0.1)
        assert replayer.submitted == 2  # third arrival now at t=0.2
        sim.run(until=0.3)
        assert replayer.submitted == 3

    def test_invalid_time_scale(self):
        sim, layer, tree = make_env()
        with pytest.raises(ValueError):
            TraceReplayer(sim, layer, tree, [], time_scale=0.0)

    def test_empty_trace_noop(self):
        sim, layer, tree = make_env()
        replayer = TraceReplayer(sim, layer, tree, []).start()
        sim.run(until=0.01)
        assert replayer.submitted == 0

    def test_record_then_replay_reproduces_mix(self):
        # Record a run, replay it into a fresh stack, compare volume.
        sim, layer, tree = make_env()
        recorder = TraceRecorder(layer).install()
        group = tree.create("workload.slice/app")
        PacedWorkload(sim, layer, group, rate=2000, stop_at=0.1, seed=3).start()
        sim.run(until=0.2)

        sim2, layer2, tree2 = make_env()
        replayer = TraceReplayer(sim2, layer2, tree2, recorder.records).start()
        sim2.run(until=0.3)
        assert replayer.completed == len(recorder.records)
        assert layer2.completed_bytes == layer.completed_bytes
