"""Unit tests for the Bio data structure."""

import pytest

from repro.block.bio import Bio, BioFlags, IOOp, SECTOR_SIZE
from repro.cgroup import CgroupTree


@pytest.fixture
def cgroup():
    return CgroupTree().create("a")


def test_bio_fields(cgroup):
    bio = Bio(IOOp.READ, 4096, 100, cgroup)
    assert not bio.is_write
    assert bio.nbytes == 4096
    assert bio.sector == 100
    assert bio.flags is BioFlags.NONE


def test_write_flag(cgroup):
    bio = Bio(IOOp.WRITE, 4096, 0, cgroup)
    assert bio.is_write


def test_end_sector_rounds_up(cgroup):
    bio = Bio(IOOp.READ, 4096, 10, cgroup)
    assert bio.end_sector == 10 + 4096 // SECTOR_SIZE
    odd = Bio(IOOp.READ, 4097, 10, cgroup)
    assert odd.end_sector == 10 + 4096 // SECTOR_SIZE + 1


def test_ids_are_unique(cgroup):
    first = Bio(IOOp.READ, 4096, 0, cgroup)
    second = Bio(IOOp.READ, 4096, 0, cgroup)
    assert first.id != second.id


def test_invalid_size_rejected(cgroup):
    with pytest.raises(ValueError):
        Bio(IOOp.READ, 0, 0, cgroup)
    with pytest.raises(ValueError):
        Bio(IOOp.READ, -4096, 0, cgroup)


def test_negative_sector_rejected(cgroup):
    with pytest.raises(ValueError):
        Bio(IOOp.READ, 4096, -1, cgroup)


def test_latency_requires_completion(cgroup):
    bio = Bio(IOOp.READ, 4096, 0, cgroup)
    with pytest.raises(ValueError):
        _ = bio.latency
    bio.submit_time = 1.0
    bio.issue_time = 1.5
    bio.complete_time = 2.0
    assert bio.latency == pytest.approx(1.0)
    assert bio.device_latency == pytest.approx(0.5)
    assert bio.wait_time == pytest.approx(0.5)


def test_swap_flag_combination(cgroup):
    bio = Bio(IOOp.WRITE, 4096, 0, cgroup, flags=BioFlags.SWAP | BioFlags.META)
    assert bio.flags & BioFlags.SWAP
    assert bio.flags & BioFlags.META
    assert not bio.flags & BioFlags.JOURNAL
