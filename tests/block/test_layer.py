"""Unit tests for the block layer."""

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer, BlockLayerError
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.sim import Simulator


def make_env(nr_slots=8, parallelism=2, issue_overhead=0.0, sigma=0.0):
    sim = Simulator()
    spec = DeviceSpec(
        name="dev",
        parallelism=parallelism,
        srv_rand_read=100e-6,
        srv_seq_read=80e-6,
        srv_rand_write=120e-6,
        srv_seq_write=100e-6,
        read_bw=1e9,
        write_bw=1e9,
        sigma=sigma,
        nr_slots=nr_slots,
    )
    device = Device(sim, spec, np.random.default_rng(0))
    controller = NoopController()
    controller.issue_overhead = issue_overhead
    layer = BlockLayer(sim, device, controller)
    tree = CgroupTree()
    return sim, layer, tree


def test_submit_flows_to_completion():
    sim, layer, tree = make_env()
    group = tree.create("a")
    completed = []
    signal = layer.submit(Bio(IOOp.READ, 4096, 5, group))
    signal.wait(completed.append)
    sim.run()
    assert len(completed) == 1
    bio = completed[0]
    assert bio.submit_time == 0.0
    assert bio.complete_time == pytest.approx(100e-6)
    assert layer.completed_ios == 1
    assert layer.completed_bytes == 4096


def test_cgroup_stats_accounted_at_submit():
    sim, layer, tree = make_env()
    group = tree.create("a")
    layer.submit(Bio(IOOp.WRITE, 8192, 0, group))
    assert group.stats.wbytes == 8192
    assert group.stats.wios == 1


def test_sequential_detection_per_cgroup():
    sim, layer, tree = make_env()
    a = tree.create("a")
    b = tree.create("b")
    first = Bio(IOOp.READ, 4096, 0, a)
    second = Bio(IOOp.READ, 4096, first.end_sector, a)
    interloper = Bio(IOOp.READ, 4096, 9999, b)
    layer.submit(first)
    layer.submit(interloper)  # b's IO does not break a's stream
    layer.submit(second)
    assert not first.sequential  # no previous IO from a
    assert not interloper.sequential
    assert second.sequential
    sim.run()


def test_request_slots_limit_inflight():
    sim, layer, tree = make_env(nr_slots=4, parallelism=4)
    group = tree.create("a")
    for index in range(10):
        layer.submit(Bio(IOOp.READ, 4096, index * 100, group))
    # Only 4 slots: 4 in flight, rest waiting in the controller queue.
    assert layer.inflight == 4
    assert layer.depleted_events > 0
    sim.run()
    assert layer.completed_ios == 10


def test_dispatch_without_slots_raises():
    sim, layer, tree = make_env(nr_slots=1)
    group = tree.create("a")
    layer.submit(Bio(IOOp.READ, 4096, 0, group))
    with pytest.raises(BlockLayerError):
        layer.dispatch(Bio(IOOp.READ, 4096, 1, group))


def test_latency_windows_split_reads_writes():
    sim, layer, tree = make_env()
    group = tree.create("a")
    layer.submit(Bio(IOOp.READ, 4096, 1, group))
    layer.submit(Bio(IOOp.WRITE, 4096, 999, group))
    sim.run()
    assert layer.read_latency.count(sim.now) == 1
    assert layer.write_latency.count(sim.now) == 1
    assert layer.read_latency.percentile(sim.now, 50) == pytest.approx(100e-6)


def test_cgroup_latency_window_populated():
    sim, layer, tree = make_env()
    group = tree.create("workload")
    layer.submit(Bio(IOOp.READ, 4096, 1, group))
    sim.run()
    window = layer.cgroup_window("workload")
    assert window.count(sim.now) == 1


def test_issue_overhead_serializes_dispatch():
    # With 50us serialized CPU cost per IO and a fast device, throughput
    # is capped at 20K IOPS by the issue path, not the device.
    sim, layer, tree = make_env(nr_slots=64, parallelism=32, issue_overhead=50e-6)
    group = tree.create("a")

    outstanding = {"count": 0}

    def top_up(_value=None):
        while outstanding["count"] < 32 and sim.now < 0.1:
            outstanding["count"] += 1
            signal = layer.submit(Bio(IOOp.READ, 4096, layer.submitted_ios * 7 + 1, group))
            signal.wait(finished)

    def finished(_bio):
        outstanding["count"] -= 1
        top_up()

    top_up()
    sim.run(until=0.12)
    achieved = layer.completed_ios / 0.1
    assert achieved == pytest.approx(20_000, rel=0.1)


def test_iops_of_and_snapshot():
    sim, layer, tree = make_env()
    group = tree.create("a")
    for index in range(3):
        layer.submit(Bio(IOOp.READ, 4096, index * 50, group))
    sim.run()
    assert layer.iops_of(group) == 3
    snap = layer.snapshot_counts()
    layer.submit(Bio(IOOp.READ, 4096, 7777, group))
    sim.run()
    assert layer.iops_of(group, since_counts=snap) == 1
