"""Unit tests for repro.faults and the device-side fault behaviours."""

import math

import numpy as np
import pytest

from repro.block.bio import Bio, BioStatus, IOOp
from repro.block.device import Device, DeviceSpec
from repro.cgroup import CgroupTree
from repro.faults import (
    NO_FAULT,
    Brownout,
    ErrorBurst,
    FaultError,
    FaultPlan,
    GCStall,
    Hang,
    fault_from_dict,
    plan_from_config,
)
from repro.obs.trace import TRACE, TraceBuffer
from repro.sim import Simulator

SRV = 100e-6  # noiseless 4 KiB random-read service time of the test device


def make_device(faults=None, parallelism=2, sigma=0.0, rng_seed=0):
    sim = Simulator()
    spec = DeviceSpec(
        name="dev",
        parallelism=parallelism,
        srv_rand_read=SRV,
        srv_seq_read=80e-6,
        srv_rand_write=120e-6,
        srv_seq_write=100e-6,
        read_bw=1e9,
        write_bw=1e9,
        sigma=sigma,
        nr_slots=64,
    )
    device = Device(sim, spec, np.random.default_rng(rng_seed), faults=faults)
    return sim, device


@pytest.fixture
def group():
    return CgroupTree().create("ws")


def read_bio(group, sector=10_000):
    # A non-zero random sector so device_sequential stays False.
    return Bio(IOOp.READ, 4096, sector, group)


class TestFaultWindows:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            GCStall(start=-0.1, duration=0.2)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(FaultError):
            Brownout(start=0.0, duration=0.0)

    def test_window_is_half_open(self):
        fault = GCStall(start=1.0, duration=0.5)
        assert not fault.active(0.999)
        assert fault.active(1.0)
        assert fault.active(1.499)
        assert not fault.active(1.5)

    def test_brownout_mult_below_one_rejected(self):
        with pytest.raises(FaultError):
            Brownout(start=0.0, duration=1.0, latency_mult=0.5)

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_error_rate_out_of_range_rejected(self, rate):
        with pytest.raises(FaultError):
            ErrorBurst(start=0.0, duration=1.0, error_rate=rate)

    def test_error_burst_op_validated(self):
        with pytest.raises(FaultError):
            ErrorBurst(start=0.0, duration=1.0, op="trim")

    def test_hang_defaults_to_unbounded(self):
        assert math.isinf(Hang(start=0.0).end)
        assert Hang(start=0.0).active(1e9)


class TestFaultPlan:
    def test_non_window_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(["brownout"])

    def test_inactive_windows_yield_no_fault(self, group):
        plan = FaultPlan([Brownout(start=1.0, duration=1.0)])
        assert plan.decide(0.5, read_bio(group)) is NO_FAULT

    def test_brownouts_compose_multiplicatively(self, group):
        plan = FaultPlan(
            [
                Brownout(start=0.0, duration=1.0, latency_mult=2.0),
                Brownout(start=0.0, duration=1.0, latency_mult=3.0),
            ]
        )
        assert plan.decide(0.5, read_bio(group)).latency_mult == pytest.approx(6.0)

    def test_gc_stall_defers_to_window_end(self, group):
        plan = FaultPlan(
            [
                GCStall(start=0.0, duration=0.4),
                GCStall(start=0.0, duration=0.9),
            ]
        )
        decision = plan.decide(0.25, read_bio(group))
        assert decision.delay == pytest.approx(0.65)  # the *latest* end wins

    def test_error_draw_without_rng_raises(self, group):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=1.0)])
        with pytest.raises(FaultError, match="no RNG"):
            plan.decide(0.5, read_bio(group))

    def test_error_decisions_deterministic_per_seed(self, group):
        def decisions(seed):
            plan = FaultPlan(
                [ErrorBurst(start=0.0, duration=1.0, error_rate=0.5)], seed=seed
            )
            return [plan.decide(0.5, read_bio(group)).error for _ in range(64)]

        run = decisions(42)
        assert run == decisions(42)
        assert any(run) and not all(run)

    def test_op_filter_skips_non_matching_requests(self, group):
        plan = FaultPlan(
            [ErrorBurst(start=0.0, duration=1.0, op="write")], seed=1
        )
        # Reads never match a write burst — and never consume a draw.
        assert not plan.decide(0.5, read_bio(group)).error
        write = Bio(IOOp.WRITE, 4096, 0, group)
        assert plan.decide(0.5, write).error

    def test_bind_does_not_override_seed(self, group):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=1.0)], seed=7)
        baseline = [plan.decide(0.5, read_bio(group)).error for _ in range(8)]
        rebound = FaultPlan([ErrorBurst(start=0.0, duration=1.0)], seed=7)
        rebound.bind(np.random.default_rng(999))
        assert [rebound.decide(0.5, read_bio(group)).error for _ in range(8)] == baseline

    def test_hang_active_tracks_windows(self):
        plan = FaultPlan([Hang(start=1.0, duration=2.0)])
        assert not plan.hang_active(0.5)
        assert plan.hang_active(1.5)
        assert not plan.hang_active(3.5)


class TestConfigSurface:
    def test_fault_from_dict_builds_each_kind(self):
        assert isinstance(
            fault_from_dict({"kind": "brownout", "start": 0, "duration": 1}), Brownout
        )
        burst = fault_from_dict(
            {"kind": "error_burst", "start": 0, "duration": 1, "error_rate": 0.25}
        )
        assert isinstance(burst, ErrorBurst) and burst.error_rate == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            fault_from_dict({"kind": "meteor", "start": 0, "duration": 1})

    def test_bad_parameters_rejected(self):
        with pytest.raises(FaultError, match="bad parameters"):
            fault_from_dict({"kind": "gc_stall", "start": 0, "duration": 1, "x": 2})

    def test_plan_from_config(self):
        plan = plan_from_config(
            [
                {"kind": "gc_stall", "start": 0.1, "duration": 0.2},
                {"kind": "hang", "start": 0.5, "duration": 0.1},
            ],
            seed=3,
        )
        assert len(plan) == 2


class TestDeviceFaults:
    def test_error_burst_fails_bios_without_completing_them_as_ok(self, group):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=1.0)], seed=0)
        sim, device = make_device(faults=plan)
        done = []
        device.on_complete = done.append
        device.submit(read_bio(group))
        sim.run()
        assert [bio.status for bio in done] == [BioStatus.EIO]
        assert device.errored_ios == 1
        assert device.completed_ios == 0 and device.completed_bytes == 0

    def test_finite_hang_parks_then_resumes(self, group):
        plan = FaultPlan([Hang(start=0.01, duration=0.05)])
        sim, device = make_device(faults=plan)
        done = []
        device.on_complete = done.append
        sim.schedule(0.02, device.submit, read_bio(group))
        sim.run(until=0.03)
        assert not done and device.in_flight == 1  # parked, channel held
        sim.run()
        assert len(done) == 1
        # Resumed at the window's end with its full pre-drawn service time.
        assert sim.now == pytest.approx(0.06 + SRV)

    def test_unbounded_hang_never_completes(self, group):
        plan = FaultPlan([Hang(start=0.0)])
        sim, device = make_device(faults=plan)
        done = []
        device.on_complete = done.append
        device.submit(read_bio(group))
        sim.run()
        assert not done and device.in_flight == 1

    def test_abort_reclaims_parked_bio_and_frees_channel(self, group):
        plan = FaultPlan([Hang(start=0.0)])
        sim, device = make_device(faults=plan, parallelism=1)
        done = []
        device.on_complete = done.append
        hung = read_bio(group)
        queued = read_bio(group, sector=20_000)
        device.submit(hung)
        device.submit(queued)  # waits behind the hung bio's channel
        sim.run()
        assert device.abort(hung) is True
        assert device.aborted_ios == 1
        # Freeing the channel begins the queued request... which hangs too.
        assert device.in_flight == 1
        assert device.abort(hung) is False  # no longer held

    def test_abort_cancels_in_service_completion(self, group):
        sim, device = make_device()
        done = []
        device.on_complete = done.append
        bio = read_bio(group)
        device.submit(bio)
        assert device.abort(bio) is True
        sim.run()
        assert not done and device.in_flight == 0

    def test_fault_plan_never_perturbs_service_noise(self, group):
        """The determinism contract: with sigma noise, per-bio service times
        are identical with and without an (independently seeded) fault plan."""

        def completion_times(faults):
            sim, device = make_device(faults=faults, sigma=0.3, parallelism=1)
            done = []
            device.on_complete = lambda bio: done.append(sim.now)
            for index in range(16):
                sim.schedule(index * 0.01, device.submit, read_bio(group))
            sim.run()
            return done

        plan = FaultPlan(
            [ErrorBurst(start=0.0, duration=1.0, error_rate=0.5)], seed=11
        )
        assert completion_times(plan) == completion_times(None)

    def test_fault_boundary_tracepoints(self, group):
        plan = FaultPlan(
            [GCStall(start=0.01, duration=0.02), Hang(start=0.05)]
        )
        buffer = TraceBuffer().attach(
            TRACE, events=("dev_fault_begin", "dev_fault_end")
        )
        try:
            sim, _device = make_device(faults=plan)
            sim.run()
        finally:
            buffer.detach()
        events = [(e.name, e.fields["kind"], e.fields["index"]) for e in buffer.events]
        assert events == [
            ("dev_fault_begin", "gc_stall", 0),
            ("dev_fault_end", "gc_stall", 0),
            ("dev_fault_begin", "hang", 1),
        ]
        begin = buffer.events[0]
        assert begin.fields["until"] == pytest.approx(0.03)
        hang_begin = buffer.events[2]
        assert hang_begin.fields["until"] == -1.0  # unbounded
