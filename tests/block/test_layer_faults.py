"""Block-layer error/timeout/retry paths (docs/FAULTS.md).

The regression class at the bottom is the slot-release audit: every
completion path — success, retryable failure, terminal error, timeout —
must return the bio's request slot exactly once, so an all-error run ends
with zero inflight and a fully dispatchable layer.
"""

import numpy as np
import pytest

from repro.block.bio import Bio, BioStatus, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer, BlockLayerError
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.faults import ErrorBurst, FaultPlan, Hang
from repro.sim import Simulator

SRV = 100e-6


def make_env(faults=None, io_timeout=None, max_retries=3, nr_slots=64,
             parallelism=2, retry_backoff=None):
    sim = Simulator()
    spec = DeviceSpec(
        name="dev",
        parallelism=parallelism,
        srv_rand_read=SRV,
        srv_seq_read=80e-6,
        srv_rand_write=120e-6,
        srv_seq_write=100e-6,
        read_bw=1e9,
        write_bw=1e9,
        sigma=0.0,
        nr_slots=nr_slots,
    )
    device = Device(sim, spec, np.random.default_rng(0), faults=faults)
    layer = BlockLayer(
        sim, device, NoopController(),
        io_timeout=io_timeout, max_retries=max_retries,
        retry_backoff=retry_backoff,
    )
    tree = CgroupTree()
    return sim, layer, tree


def read_bio(group, sector=10_000):
    return Bio(IOOp.READ, 4096, sector, group)


class TestConstruction:
    def test_nonpositive_io_timeout_rejected(self):
        with pytest.raises(BlockLayerError):
            make_env(io_timeout=0.0)

    def test_negative_max_retries_rejected(self):
        with pytest.raises(BlockLayerError):
            make_env(max_retries=-1)


class TestRetry:
    def test_transient_error_retried_to_success(self):
        # The burst covers only the first attempt; the backed-off retry
        # lands outside it and succeeds.
        plan = FaultPlan([ErrorBurst(start=0.0, duration=0.5e-3)], seed=0)
        sim, layer, tree = make_env(faults=plan, retry_backoff=1e-3)
        group = tree.create("ws")
        done = []
        layer.submit(read_bio(group)).wait(done.append)
        sim.run()
        (bio,) = done
        assert bio.ok and bio.retries == 1
        assert layer.requeued_ios == 1 and layer.errored_ios == 0
        assert layer.completed_ios == 1 and layer.completed_bytes == 4096
        # Retry waits the backoff after the failed first attempt.
        assert bio.complete_time == pytest.approx(SRV + 1e-3 + SRV)
        stats = group.stats.device(layer.dev)
        assert stats.requeues == 1 and stats.errors == 0

    def test_backoff_doubles_per_retry(self):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=1.0)], seed=0)
        sim, layer, tree = make_env(faults=plan, max_retries=2, retry_backoff=1e-3)
        group = tree.create("ws")
        done = []
        layer.submit(read_bio(group)).wait(done.append)
        sim.run()
        (bio,) = done
        assert bio.status is BioStatus.EIO and bio.retries == 2
        # attempt + 1ms + attempt + 2ms + attempt.
        assert bio.complete_time == pytest.approx(3 * SRV + 1e-3 + 2e-3)

    def test_exhausted_retries_complete_with_terminal_error(self):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=1.0)], seed=0)
        sim, layer, tree = make_env(faults=plan, max_retries=2)
        group = tree.create("ws")
        done = []
        layer.submit(read_bio(group)).wait(done.append)
        sim.run()
        (bio,) = done
        assert bio.status is BioStatus.EIO
        assert layer.errored_ios == 1 and layer.requeued_ios == 2
        assert layer.completed_ios == 1  # finished, though not successfully
        assert layer.completed_bytes == 0
        assert layer.errors_by_cgroup == {"ws": 1}
        assert layer.requeues_by_cgroup == {"ws": 2}
        stats = group.stats.device(layer.dev)
        assert stats.errors == 1 and stats.requeues == 2

    def test_max_retries_zero_fails_immediately(self):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=1.0)], seed=0)
        sim, layer, tree = make_env(faults=plan, max_retries=0)
        group = tree.create("ws")
        done = []
        layer.submit(read_bio(group)).wait(done.append)
        sim.run()
        assert done[0].status is BioStatus.EIO and done[0].retries == 0
        assert layer.requeued_ios == 0


class TestTimeout:
    def test_hung_bio_times_out(self):
        plan = FaultPlan([Hang(start=0.0)])
        sim, layer, tree = make_env(faults=plan, io_timeout=0.01, max_retries=0)
        group = tree.create("ws")
        done = []
        layer.submit(read_bio(group)).wait(done.append)
        sim.run()
        (bio,) = done
        assert bio.status is BioStatus.TIMEOUT
        assert bio.complete_time == pytest.approx(0.01)
        assert layer.timed_out_ios == 1
        assert layer.device.aborted_ios == 1
        # The timed-out bio records its full io_timeout as device latency —
        # the degraded signal the QoS loop reacts to.
        assert layer.read_latency.percentile(sim.now, 50) == pytest.approx(0.01)

    def test_timeout_retries_then_terminal(self):
        plan = FaultPlan([Hang(start=0.0)])
        sim, layer, tree = make_env(
            faults=plan, io_timeout=0.01, max_retries=1, retry_backoff=1e-3
        )
        group = tree.create("ws")
        done = []
        layer.submit(read_bio(group)).wait(done.append)
        sim.run()
        (bio,) = done
        assert bio.status is BioStatus.TIMEOUT and bio.retries == 1
        assert layer.timed_out_ios == 2  # both attempts timed out
        assert bio.complete_time == pytest.approx(0.01 + 1e-3 + 0.01)

    def test_healthy_run_cancels_timers(self):
        sim, layer, tree = make_env(io_timeout=10.0)
        group = tree.create("ws")
        for index in range(8):
            layer.submit(read_bio(group, sector=index * 1000))
        sim.run()
        assert layer.completed_ios == 8 and layer.timed_out_ios == 0
        assert not layer._timeouts
        # No timeout event left behind: the clock stopped at the last
        # completion, not at now + io_timeout.
        assert sim.now < 1.0


class TestSlotRelease:
    """Satellite audit: request slots never leak, on any completion path."""

    def test_all_error_run_returns_every_slot(self):
        plan = FaultPlan([ErrorBurst(start=0.0, duration=10.0)], seed=0)
        sim, layer, tree = make_env(
            faults=plan, max_retries=2, nr_slots=4, parallelism=2
        )
        group = tree.create("ws")
        done = []
        for index in range(20):  # 5x the slot count
            signal = layer.submit(read_bio(group, sector=index * 1000))
            signal.wait(done.append)
        sim.run()
        assert len(done) == 20
        assert all(bio.status is BioStatus.EIO for bio in done)
        assert layer.inflight == 0
        assert layer.device.in_flight == 0
        assert layer.can_dispatch()
        assert not layer._retryq and not layer._timeouts

    def test_all_timeout_run_returns_every_slot(self):
        plan = FaultPlan([Hang(start=0.0)])
        sim, layer, tree = make_env(
            faults=plan, io_timeout=0.005, max_retries=1, nr_slots=4,
            parallelism=2,
        )
        group = tree.create("ws")
        done = []
        for index in range(12):
            layer.submit(read_bio(group, sector=index * 1000)).wait(done.append)
        sim.run()
        assert len(done) == 12
        assert all(bio.status is BioStatus.TIMEOUT for bio in done)
        assert layer.inflight == 0
        assert layer.device.in_flight == 0
        assert not layer.device._hung  # no bio left parked

    def test_mixed_fault_run_conserves_slots(self):
        plan = FaultPlan(
            [
                ErrorBurst(start=0.0, duration=0.004, error_rate=0.5),
                Hang(start=0.006, duration=0.004),
            ],
            seed=3,
        )
        sim, layer, tree = make_env(
            faults=plan, io_timeout=0.05, max_retries=2, nr_slots=8,
            parallelism=2,
        )
        group = tree.create("ws")
        done = []
        for index in range(40):
            sim.schedule(
                index * 0.0004,
                lambda i=index: layer.submit(
                    read_bio(group, sector=i * 1000)
                ).wait(done.append),
            )
        sim.run()
        assert len(done) == 40
        assert layer.inflight == 0 and layer.device.in_flight == 0
        assert layer.completed_ios == 40
