"""simlint v2: the interprocedural rules and the pragma ledger.

Same fixture style as test_simlint.py — every rule gets planted
violations that must be flagged, clean variants that must pass, and
pragma interactions — plus the tokenizer-level edge cases (pragmas in
docstrings, markers on decorator lines) and a baseline round-trip over
v2 findings.
"""

import textwrap
from pathlib import Path

import pytest

from repro.tools.simlint import (
    RULES,
    LintConfig,
    apply_baseline,
    lint_source,
    load_baseline,
    write_baseline,
)


def findings_for(source, rule=None, path="snippet.py"):
    config = LintConfig(select=[rule] if rule else None)
    return lint_source(textwrap.dedent(source), path, config)


class TestRegistryV2:
    def test_v2_rules_registered(self):
        expected = {
            "unit-flow",
            "rng-stream-labels",
            "dual-path-parity",
            "unused-pragma",
        }
        assert expected <= set(RULES)


class TestUnitFlow:
    def test_assignment_across_units_flagged(self):
        found = findings_for(
            """
            def f():
                window_sec = 1.0
                total_usec = window_sec
            """,
            rule="unit-flow",
        )
        assert len(found) == 1 and "total_usec" in found[0].message

    def test_module_level_constant_flow_flagged(self):
        found = findings_for(
            "period_sec = 0.1\nperiod_usec = period_sec\n",
            rule="unit-flow",
        )
        assert len(found) == 1

    def test_attribute_store_flagged(self):
        found = findings_for(
            """
            class W:
                def f(self):
                    self.total_usec = self.window_sec
            """,
            rule="unit-flow",
        )
        assert len(found) == 1

    def test_return_flow_through_call_chain_flagged(self):
        # The PR-2 incident shape: a _usec-named accessor returning the
        # value of a _sec-returning helper two hops away.
        found = findings_for(
            """
            class W:
                def _window_sec(self):
                    return self.span_sec

                def _passthrough(self):
                    return self._window_sec()

                def total_usec(self):
                    return self._passthrough()
            """,
            rule="unit-flow",
        )
        assert len(found) == 1 and "total_usec" in found[0].message

    def test_call_argument_flow_flagged(self):
        found = findings_for(
            """
            def arm(delay_usec):
                return delay_usec

            def caller():
                timeout_sec = 2.0
                arm(timeout_sec)
            """,
            rule="unit-flow",
        )
        assert len(found) == 1 and "delay_usec" in found[0].message

    def test_cost_is_a_distinct_tag(self):
        found = findings_for(
            """
            def f():
                latency_sec = 0.0
                abs_cost = latency_sec
            """,
            rule="unit-flow",
        )
        assert len(found) == 1 and "cost" in found[0].message

    def test_multiplication_is_a_conversion(self):
        assert not findings_for(
            """
            def f():
                window_sec = 1.0
                total_usec = window_sec * 1e6
            """,
            rule="unit-flow",
        )

    def test_agreeing_units_pass(self):
        assert not findings_for(
            """
            def f():
                a_usec = 1.0
                b_usec = 2.0
                total_usec = a_usec + b_usec
            """,
            rule="unit-flow",
        )

    def test_mixed_addition_drops_the_tag(self):
        # a_usec + b_sec is itself unit-suffix's business; the *flow* rule
        # must not claim to know the result's unit.
        assert not findings_for(
            """
            def f():
                a_usec = 1.0
                b_sec = 2.0
                x_msec = a_usec + b_sec
            """,
            rule="unit-flow",
        )

    def test_pragma_suppresses(self):
        assert not findings_for(
            """
            def f():
                window_sec = 1.0
                total_usec = window_sec  # simlint: disable=unit-flow
            """,
            rule="unit-flow",
        )


class TestRngStreamLabels:
    def test_non_literal_label_flagged(self):
        found = findings_for(
            """
            def f(bed, name):
                return bed.rng_for(name)
            """,
            rule="rng-stream-labels",
        )
        assert len(found) == 1 and "literal-derivable" in found[0].message

    def test_fstring_without_literal_prefix_flagged(self):
        found = findings_for(
            """
            def f(bed, name):
                return bed.rng_for(f"{name}")
            """,
            rule="rng-stream-labels",
        )
        assert len(found) == 1

    def test_empty_label_flagged(self):
        found = findings_for(
            """
            def f(bed):
                return bed.rng_for("")
            """,
            rule="rng-stream-labels",
        )
        assert len(found) == 1 and "no distinguishing literal" in found[0].message

    def test_duplicate_label_in_scope_flagged(self):
        found = findings_for(
            """
            def f(bed):
                a = bed.rng_for("device:vda")
                b = bed.rng_for("device:vda")
                return a, b
            """,
            rule="rng-stream-labels",
        )
        assert len(found) == 1 and "share one bit stream" in found[0].message

    def test_duplicate_fstring_skeleton_flagged(self):
        # Same template, different interpolated names: statically the same
        # collision risk class, so it is flagged.
        found = findings_for(
            """
            def f(bed, a, b):
                x = bed.rng_for(f"dev:{a}")
                y = bed.rng_for(f"dev:{b}")
                return x, y
            """,
            rule="rng-stream-labels",
        )
        assert len(found) == 1

    def test_same_label_in_different_scopes_passes(self):
        assert not findings_for(
            """
            def f(bed):
                return bed.rng_for("gc")

            def g(bed):
                return bed.rng_for("gc")
            """,
            rule="rng-stream-labels",
        )

    def test_noise_stream_label_is_second_argument(self):
        found = findings_for(
            """
            def f(rng, name):
                return noise_stream(rng, name)
            """,
            rule="rng-stream-labels",
        )
        assert len(found) == 1
        assert not findings_for(
            """
            def f(rng):
                return noise_stream(rng, "gc_stall")
            """,
            rule="rng-stream-labels",
        )

    def test_distinct_literal_labels_pass(self):
        assert not findings_for(
            """
            def f(bed):
                a = bed.rng_for("device:vda")
                b = bed.rng_for("device:vdb")
                return a, b
            """,
            rule="rng-stream-labels",
        )


DUAL_OK = """
class S:
    def fast(self):
        # simlint: dual-of=S.slow
        self.count += 1

    def slow(self):
        self.count += 1
"""


class TestDualPathParity:
    def test_matching_pair_passes(self):
        assert not findings_for(DUAL_OK, rule="dual-path-parity")

    def test_mutation_mismatch_flagged(self):
        found = findings_for(
            """
            class S:
                def fast(self):
                    # simlint: dual-of=S.slow
                    self.count += 1

                def slow(self):
                    self.other += 1
            """,
            rule="dual-path-parity",
        )
        assert len(found) == 1 and "mutate different attribute" in found[0].message

    def test_observability_state_is_the_allowed_delta(self):
        assert not findings_for(
            """
            class S:
                def fast(self):
                    # simlint: dual-of=S.slow
                    self.count += 1

                def slow(self):
                    prof = self._prof
                    if prof.enabled:
                        prof.steps += 1
                        self._prof.pops += 1
                    self.count += 1
            """,
            rule="dual-path-parity",
        )

    def test_transitive_mutations_count(self):
        assert not findings_for(
            """
            class S:
                def fast(self):
                    # simlint: dual-of=S.slow
                    self._bump()

                def slow(self):
                    self.count += 1

                def _bump(self):
                    self.count += 1
            """,
            rule="dual-path-parity",
        )

    def test_emit_mismatch_flagged(self):
        found = findings_for(
            """
            from repro.obs.trace import TRACE

            class S:
                def __init__(self):
                    self._tp = TRACE.points["bio_submit"]

                def fast(self):
                    # simlint: dual-of=S.slow
                    self._tp.emit(0.0)

                def slow(self):
                    pass
            """,
            rule="dual-path-parity",
        )
        assert len(found) == 1 and "different tracepoint" in found[0].message

    def test_marker_on_line_above_def(self):
        found = findings_for(
            """
            class S:
                # simlint: dual-of=S.slow
                def fast(self):
                    self.count += 1

                def slow(self):
                    self.other += 1
            """,
            rule="dual-path-parity",
        )
        assert len(found) == 1

    def test_orphan_marker_flagged(self):
        found = findings_for(
            "# simlint: dual-of=S.slow\nX = 1\n",
            rule="dual-path-parity",
        )
        assert len(found) == 1 and "not attached" in found[0].message

    def test_self_dual_flagged(self):
        found = findings_for(
            """
            def fast():
                # simlint: dual-of=fast
                return 1
            """,
            rule="dual-path-parity",
        )
        assert len(found) == 1 and "its own dual" in found[0].message

    def test_missing_target_flagged(self):
        found = findings_for(
            """
            def fast():
                # simlint: dual-of=nonexistent
                return 1
            """,
            rule="dual-path-parity",
        )
        assert len(found) == 1 and "not defined in this module" in found[0].message

    def test_marker_in_docstring_does_not_count(self):
        assert not findings_for(
            '''
            def f():
                """Example: ``# simlint: dual-of=Simulator.run``."""
                return 1
            ''',
            rule="dual-path-parity",
        )


class TestUnusedPragma:
    def test_dead_pragma_flagged(self):
        found = findings_for(
            "x = 1  # simlint: disable=no-wallclock\n",
        )
        assert [f.rule for f in found] == ["unused-pragma"]
        assert "suppresses nothing" in found[0].message

    def test_dead_disable_all_flagged(self):
        # A dead ``all`` must not self-suppress via its own "all".
        found = findings_for("x = 1  # simlint: disable=all\n")
        assert [f.rule for f in found] == ["unused-pragma"]

    def test_unknown_rule_name_flagged(self):
        found = findings_for("x = 1  # simlint: disable=no-such-rule\n")
        assert [f.rule for f in found] == ["unused-pragma"]
        assert "unknown rule" in found[0].message

    def test_used_pragma_passes(self):
        assert not findings_for(
            "import time\nstart = time.time()  # simlint: disable=no-wallclock\n",
        )

    def test_pragma_on_line_above_counts_as_used(self):
        assert not findings_for(
            "import time\n# simlint: disable=no-wallclock\nstart = time.time()\n",
        )

    def test_explicit_unused_pragma_optout(self):
        assert not findings_for(
            "x = 1  # simlint: disable=no-wallclock,unused-pragma\n",
        )

    def test_disabled_rule_pragma_not_flagged(self):
        # A pragma for a rule not enabled this run could not have fired;
        # flagging it would punish running with --select.
        config = LintConfig(select=["unused-pragma"])
        found = lint_source(
            "x = 1  # simlint: disable=no-wallclock\n", "snippet.py", config
        )
        assert not found


class TestPragmaTokenization:
    def test_pragma_inside_docstring_does_not_suppress(self):
        # The pragma text sits in a string literal on the line above the
        # violation; a raw line scan would treat it as a suppression.
        found = findings_for(
            'import time\nDOC = """simlint: disable=no-wallclock"""\nstart = time.time()\n',
            rule="no-wallclock",
        )
        assert len(found) == 1

    def test_pragma_inside_docstring_not_flagged_as_unused(self):
        assert not findings_for('DOC = """simlint: disable=no-wallclock"""\n')

    def test_pragma_on_decorator_line(self):
        # A def-anchored finding (the FunctionDef node's lineno is the
        # ``def`` line, below any decorators) is suppressed by a pragma on
        # the decorator line directly above it.
        assert not findings_for(
            """
            def deco(fn):
                return fn

            @deco  # simlint: disable=no-mutable-default
            def f(x=[]):
                return x
            """,
            rule="no-mutable-default",
        )


class TestBaselineRoundTripV2:
    def test_v2_findings_round_trip(self, tmp_path: Path):
        source = textwrap.dedent(
            """
            def f(bed):
                a = bed.rng_for("x")
                b = bed.rng_for("x")
                window_sec = 1.0
                total_usec = window_sec
                return a, b
            """
        )
        found = lint_source(source, "mod.py", LintConfig())
        assert {f.rule for f in found} == {"rng-stream-labels", "unit-flow"}
        baseline_path = tmp_path / "simlint.baseline"
        write_baseline(baseline_path, found)
        baseline = load_baseline(baseline_path)
        new, old = apply_baseline(found, baseline)
        assert not new and len(old) == len(found)
