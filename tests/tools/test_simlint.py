"""Per-rule fixtures for simlint: positive, negative, and pragma cases.

Each rule gets at least one snippet that must be flagged, one that must
pass, and a pragma-suppressed variant.  The final class asserts the repo's
own ``src/repro`` tree is clean — the contract CI enforces.
"""

from pathlib import Path

import pytest

from repro.tools.simlint import (
    RULES,
    LintConfig,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    load_catalogue,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_for(source, rule=None, path="snippet.py"):
    config = LintConfig(select=[rule] if rule else None)
    return lint_source(source, path, config)


class TestRegistry:
    def test_all_six_contract_rules_registered(self):
        expected = {
            "no-wallclock",
            "no-unseeded-rng",
            "trace-catalogue",
            "unit-suffix",
            "no-mutable-default",
            "no-bare-assert",
        }
        assert expected <= set(RULES)

    def test_every_rule_has_description(self):
        for rule in RULES.values():
            assert rule.description


class TestNoWallclock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nstart = time.time()\n",
            "import time\nstart = time.monotonic()\n",
            "import time as t\nstart = t.perf_counter()\n",
            "from time import perf_counter\nstart = perf_counter()\n",
            "from time import perf_counter as pc\ntimer = pc\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "import datetime\nnow = datetime.datetime.utcnow()\n",
        ],
    )
    def test_flags_wallclock_reads(self, source):
        assert findings_for(source, "no-wallclock")

    @pytest.mark.parametrize(
        "source",
        [
            "import time\nx = time.sleep\n",  # not a clock read
            "def f(sim):\n    return sim.now\n",
            "from datetime import timedelta\nd = timedelta(seconds=1)\n",
        ],
    )
    def test_allows_simulated_time(self, source):
        assert not findings_for(source, "no-wallclock")

    def test_allowlist_exempts_tools_and_overhead(self):
        source = "import time\nstart = time.perf_counter()\n"
        for path in (
            "src/repro/tools/monitor.py",
            "src/repro/obs/overhead.py",
        ):
            assert lint_source(source, path, LintConfig(select=["no-wallclock"])) == []
        # Same source outside the allowlist is flagged.
        assert lint_source(
            source, "src/repro/sim/engine.py", LintConfig(select=["no-wallclock"])
        )

    def test_pragma_suppresses(self):
        source = (
            "import time\n"
            "start = time.time()  # simlint: disable=no-wallclock\n"
        )
        assert not findings_for(source, "no-wallclock")


class TestNoUnseededRng:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\nx = random.random()\n",
            "import random\nrandom.seed(1)\n",
            "from random import randint\nx = randint(0, 5)\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "import numpy as np\nx = np.random.rand(4)\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import numpy as np\nss = np.random.SeedSequence()\n",
            "from numpy.random import default_rng\nrng = default_rng()\n",
        ],
    )
    def test_flags_unseeded_draws(self, source):
        assert findings_for(source, "no-unseeded-rng")

    @pytest.mark.parametrize(
        "source",
        [
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "import numpy as np\nss = np.random.SeedSequence(entropy=7)\n",
            "import random\nrng = random.Random(1234)\n",
            "def f(rng):\n    return rng.normal(0.0, 1.0)\n",  # stream arg
        ],
    )
    def test_allows_seeded_streams(self, source):
        assert not findings_for(source, "no-unseeded-rng")

    def test_pragma_suppresses(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # simlint: disable=no-unseeded-rng\n"
        )
        assert not findings_for(source, "no-unseeded-rng")


class TestTraceCatalogue:
    def test_catalogue_loads_from_source(self):
        catalogue, optional = load_catalogue()
        assert "bio_submit" in catalogue
        assert "dev" in optional

    def test_catalogue_includes_fault_path_events(self):
        catalogue, _ = load_catalogue()
        assert catalogue["bio_error"] == (
            "dev", "id", "cgroup", "op", "nbytes", "status", "retries",
        )
        assert catalogue["bio_requeue"] == (
            "dev", "id", "cgroup", "op", "nbytes", "status", "retries",
            "backoff",
        )
        assert catalogue["dev_fault_begin"] == ("dev", "kind", "index", "until")
        assert catalogue["dev_fault_end"] == ("dev", "kind", "index")

    def test_fault_event_emit_with_unknown_field_flagged(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            '_TP = TRACE.points["bio_error"]\n'
            "_TP.emit(0.0, dev='8:0', id=1, cgroup='ws', op='read',\n"
            "         nbytes=4096, status='eio', retrys=2)\n"
        )
        found = findings_for(source, "trace-catalogue")
        assert any("retrys" in finding.message for finding in found)

    def test_fault_event_emit_matching_catalogue_is_clean(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            '_TP = TRACE.points["dev_fault_begin"]\n'
            "_TP.emit(0.0, dev='8:0', kind='hang', index=0, until=-1.0)\n"
        )
        assert not findings_for(source, "trace-catalogue")

    def test_unknown_point_name_flagged(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            'tp = TRACE.points["bio_sbumit"]\n'
        )
        found = findings_for(source, "trace-catalogue")
        assert found and "bio_sbumit" in found[0].message

    def test_point_call_and_subscribe_lists_checked(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            'tp = TRACE.point("not_an_event")\n'
            'sub = TRACE.subscribe(print, events=["bio_submit", "qos_perios"])\n'
        )
        found = findings_for(source, "trace-catalogue")
        assert {"not_an_event", "qos_perios"} <= {
            finding.message.split("'")[1] for finding in found
        }

    def test_emit_unknown_field_flagged_through_binding(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            "class C:\n"
            "    def __init__(self):\n"
            '        self._tp = TRACE.points["qos_period"]\n'
            "    def go(self, now):\n"
            "        self._tp.emit(now, period=1.0, vrate=1.0,\n"
            "                      active_groups=1, budget_blocke=0)\n"
        )
        found = findings_for(source, "trace-catalogue")
        assert any("budget_blocke" in finding.message for finding in found)

    def test_emit_missing_required_field_flagged(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            '_TP = TRACE.point("qos_period")\n'
            "_TP.emit(0.0, period=1.0, vrate=1.0)\n"
        )
        found = findings_for(source, "trace-catalogue")
        assert any("omits required" in finding.message for finding in found)

    def test_emit_omitting_optional_dev_is_clean(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            '_TP = TRACE.point("qos_period")\n'
            "_TP.emit(0.0, period=1.0, vrate=1.0, active_groups=1,\n"
            "         budget_blocked=0)\n"
        )
        assert not findings_for(source, "trace-catalogue")

    def test_emit_with_splat_skips_completeness(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            '_TP = TRACE.point("donation_recalc")\n'
            "_TP.emit(0.0, **fields)\n"
        )
        assert not findings_for(source, "trace-catalogue")

    def test_parameter_default_binding_resolved(self):
        source = (
            "from repro.obs.trace import TRACE\n"
            'def go(now, _tp=TRACE.points["qos_period"]):\n'
            "    _tp.emit(now, period=1.0, vrate=1.0)\n"
        )
        found = findings_for(source, "trace-catalogue")
        assert any("omits required" in finding.message for finding in found)

    def test_unresolvable_binding_is_skipped(self):
        source = "point = make_point()\npoint.emit(0.0, whatever=1)\n"
        assert not findings_for(source, "trace-catalogue")

    def test_custom_catalogue_via_config(self):
        config = LintConfig(
            select=["trace-catalogue"],
            catalogue={"ev": ("a", "b")},
            optional_fields=frozenset({"b"}),
        )
        bad = 'tp = REG.points["nope"]\n'
        assert lint_source(bad, "x.py", config)
        good = '_T = REG.point("ev")\n_T.emit(0.0, a=1)\n'
        assert not lint_source(good, "x.py", config)


class TestUnitSuffix:
    @pytest.mark.parametrize(
        "source",
        [
            "def f(delay_ms: float) -> None:\n    pass\n",
            "def f(size_kb: int) -> None:\n    pass\n",
            "wait_seconds = 1.0\n",
            "class C:\n    def __init__(self):\n        self.span_ns = 5\n",
            "timeout_msec: float = 0.0\n",
        ],
    )
    def test_flags_non_canonical_suffixes(self, source):
        assert findings_for(source, "unit-suffix")

    @pytest.mark.parametrize(
        "source",
        [
            "def f(wait_usec: float, size_bytes: int) -> None:\n    pass\n",
            "grace_sec = 1.0\nnr_pages = 4\n",
            "atoms = 3\nteams = 2\n",  # no underscore-delimited unit suffix
        ],
    )
    def test_allows_canonical_names(self, source):
        assert not findings_for(source, "unit-suffix")

    def test_flags_usec_sec_mixing_in_sum(self):
        found = findings_for("total = wait_usec + grace_sec\n", "unit-suffix")
        assert found and "mixes time units" in found[0].message

    def test_flags_mixing_in_comparison(self):
        assert findings_for("ok = wait_usec < limit_sec\n", "unit-suffix")

    def test_converted_operand_not_flagged(self):
        # The conversion hides behind a Mult node: not a direct +/- leaf.
        source = "total_usec = wait_usec + grace_sec * 1e6\n"
        assert not findings_for(source, "unit-suffix")

    def test_chain_reports_once(self):
        source = "total = a_usec + b_usec + c_sec + d_sec\n"
        assert len(findings_for(source, "unit-suffix")) == 1

    def test_pragma_suppresses(self):
        source = (
            "# mirrors iocost_monitor's field name\n"
            "debt_ms = 1.0  # simlint: disable=unit-suffix\n"
        )
        assert not findings_for(source, "unit-suffix")


class TestNoMutableDefault:
    @pytest.mark.parametrize(
        "source",
        [
            "def f(items=[]):\n    return items\n",
            "def f(table={}):\n    return table\n",
            "def f(seen=set()):\n    return seen\n",
            "def f(*, order=list()):\n    return order\n",
            "from collections import deque\ndef f(q=deque()):\n    return q\n",
            "f = lambda acc=[]: acc\n",
        ],
    )
    def test_flags_mutable_defaults(self, source):
        assert findings_for(source, "no-mutable-default")

    @pytest.mark.parametrize(
        "source",
        [
            "def f(items=None):\n    return items or []\n",
            "def f(n=0, name=''):\n    return n\n",
            "def f(shape=(1, 2)):\n    return shape\n",
        ],
    )
    def test_allows_immutable_defaults(self, source):
        assert not findings_for(source, "no-mutable-default")


class TestNoBareAssert:
    def test_flags_assert(self):
        assert findings_for("assert x is not None\n", "no-bare-assert")

    def test_pragma_with_justification(self):
        source = "assert x  # narrowing only - simlint: disable=no-bare-assert\n"
        assert not findings_for(source, "no-bare-assert")

    def test_pragma_on_previous_line(self):
        source = (
            "# simlint: disable=no-bare-assert\n"
            "assert x is not None\n"
        )
        assert not findings_for(source, "no-bare-assert")


class TestBaseline:
    def test_roundtrip_and_filtering(self, tmp_path):
        source = "import time\nx = time.time()\ny = time.time()\n"
        findings = findings_for(source, "no-wallclock")
        assert len(findings) == 2
        baseline_path = tmp_path / "base.txt"
        write_baseline(baseline_path, findings[:1])
        baseline = load_baseline(baseline_path)
        new, old = apply_baseline(findings, baseline)
        # The two findings share a fingerprint (same file/rule/message);
        # the baseline holds one copy, so exactly one stays grandfathered.
        assert len(old) == 1 and len(new) == 1

    def test_empty_baseline_grandfathers_nothing(self, tmp_path):
        baseline_path = tmp_path / "base.txt"
        write_baseline(baseline_path, [])
        assert load_baseline(baseline_path) == {}


class TestRepoIsClean:
    def test_simlint_clean_on_src_repro(self):
        """The acceptance contract: the shipped tree has zero findings."""
        findings = lint_paths([str(REPO_ROOT / "src" / "repro")])
        assert findings == [], "\n".join(str(finding) for finding in findings)

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / "simlint.baseline")
        assert baseline == {}
