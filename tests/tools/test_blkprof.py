"""The blkprof CLI (spans / breakdown / timeline / prof) and engine_bench."""

import json

import pytest

from repro.obs.trace import TRACE, TraceBuffer
from repro.testbed import Testbed
from repro.tools import blkprof, engine_bench


@pytest.fixture(autouse=True)
def clean_registry():
    TRACE.reset()
    yield
    TRACE.reset()


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A real trace JSONL from a small iocost testbed run."""
    TRACE.reset()
    bed = Testbed(device="ssd_new", controller="iocost")
    group = bed.add_cgroup("ws", weight=100)
    buffer = TraceBuffer().attach(TRACE)
    bed.saturate(group, depth=16)
    bed.run(0.05)
    buffer.detach()
    bed.detach()
    TRACE.reset()
    path = tmp_path_factory.mktemp("blkprof") / "trace.jsonl"
    with open(path, "w") as stream:
        buffer.save(stream)
    return path


class TestSpansCommand:
    def test_emits_jsonl_spans(self, capsys, trace_file):
        assert blkprof.main(["spans", str(trace_file), "--limit", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        span = json.loads(lines[0])
        assert span["cgroup"] == "ws"
        assert span["end_to_end_usec"] == sum(d for _, d in span["stages"])

    def test_filter_mismatch_fails(self, capsys, trace_file):
        assert blkprof.main(["spans", str(trace_file), "--cgroup", "nope"]) == 1
        assert "no completed spans" in capsys.readouterr().err


class TestBreakdownCommand:
    def test_text_rollup(self, capsys, trace_file):
        assert blkprof.main(["breakdown", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "service" in out

    def test_json_rollup_sums_exactly(self, capsys, trace_file):
        assert blkprof.main(["breakdown", str(trace_file), "--json"]) == 0
        rollup = json.loads(capsys.readouterr().out)
        stage_total = sum(s["total_usec"] for s in rollup["stages"].values())
        assert stage_total == rollup["end_to_end"]["total_usec"]


class TestTimelineCommand:
    def test_writes_valid_chrome_trace(self, capsys, trace_file, tmp_path):
        out_path = tmp_path / "timeline.json"
        assert blkprof.main(
            ["timeline", str(trace_file), "-o", str(out_path)]
        ) == 0
        assert "perfetto" in capsys.readouterr().out
        from repro.obs.timeline import validate_chrome_trace

        trace = json.loads(out_path.read_text())
        slices, _instants = validate_chrome_trace(trace)
        assert slices > 0


class TestProfCommand:
    def test_text_output(self, capsys):
        assert blkprof.main(["prof", "--bios", "300"]) == 0
        out = capsys.readouterr().out
        assert "bios_completed" in out
        assert "300" in out

    def test_json_output(self, capsys):
        assert blkprof.main(["prof", "--bios", "300", "--json"]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["bios_completed"] == 300
        assert counters["per_bio"]["bios_submitted"] == pytest.approx(1.0)


class TestErrorPaths:
    def test_missing_file(self, capsys):
        assert blkprof.main(["breakdown", "/nonexistent/trace.jsonl"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_garbage_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"no-event-key": 1}\n')
        assert blkprof.main(["spans", str(bad)]) == 1
        assert "not a trace JSONL" in capsys.readouterr().err


class TestEngineBench:
    def test_appends_trajectory_and_passes_own_floor(self, capsys, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        assert engine_bench.main(
            ["--bios", "2000", "--repeat", "1", "--out", str(out)]
        ) == 0
        trajectory = json.loads(out.read_text())
        assert isinstance(trajectory, list) and len(trajectory) == 1
        result = trajectory[0]
        assert result["schema"] == engine_bench.BENCH_SCHEMA
        assert result["bios"] == 2000
        assert result["bios_per_sec"] > 0
        assert result["sim_profile"]["bios_completed"] == 2000
        assert result["hotspots"], "cProfile found no hotspots?"
        assert all("cumtime_sec" in row for row in result["hotspots"])

        # A floor well below the just-measured rate passes (the gate is
        # 15%; halving keeps this robust to machine-load jitter on short
        # runs), and the second run appends rather than overwrites.
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({"bios_per_sec": result["bios_per_sec"] / 2}))
        assert engine_bench.main(
            ["--bios", "2000", "--repeat", "1", "--out", str(out),
             "--check-floor", str(floor)]
        ) == 0
        trajectory = json.loads(out.read_text())
        assert len(trajectory) == 2
        assert trajectory[0] == result

    def test_wraps_legacy_single_entry_artifact(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        legacy = {"schema": "repro.tools.engine_bench/1", "bios_per_sec": 42.0}
        out.write_text(json.dumps(legacy))
        assert engine_bench.main(
            ["--bios", "1000", "--repeat", "1", "--out", str(out)]
        ) == 0
        trajectory = json.loads(out.read_text())
        assert len(trajectory) == 2
        assert trajectory[0] == legacy
        assert trajectory[1]["schema"] == engine_bench.BENCH_SCHEMA

    def test_floor_regression_fails(self, capsys, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({"bios_per_sec": 1e12}))
        assert engine_bench.main(
            ["--bios", "1000", "--repeat", "1", "--out", str(out),
             "--check-floor", str(floor)]
        ) == 1
        assert "regression" in capsys.readouterr().out

    def test_committed_floor_is_generous(self, tmp_path):
        """The repo's committed floor must hold on this machine."""
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / (
            "benchmarks/BENCH_engine_floor.json"
        )
        result = engine_bench.run_bench(bios=5000, repeat=1, top=3)
        assert engine_bench.check_floor(result, floor_path) is None
