"""CLI behaviour: exit codes, output format, baseline flow, -m entry point."""

import os
import subprocess
import sys
from pathlib import Path

from repro.tools.simlint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Environment for subprocess runs: the src layout on PYTHONPATH, absolute
#: so the child's cwd does not matter.
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    ),
}

CLEAN = "def f(wait_usec: float) -> float:\n    return wait_usec\n"
DIRTY = "import time\nstart = time.time()\n"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main([path, "--no-baseline"]) == 0
        assert capsys.readouterr().out == ""

    def test_finding_exits_one_with_location(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert f"{path}:2:" in out and "no-wallclock" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main([path, "--select", "no-such-rule"]) == 2

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "broken.py", "def f(:\n")
        assert main([path]) == 2


class TestRuleSelection:
    def test_disable_skips_rule(self, tmp_path):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--no-baseline", "--disable", "no-wallclock"]) == 0

    def test_select_runs_only_named_rules(self, tmp_path):
        path = write(tmp_path, "x.py", "assert True\n" + DIRTY)
        assert main([path, "--no-baseline", "--select", "no-mutable-default"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "no-wallclock" in out and "trace-catalogue" in out


class TestBaselineFlow:
    def test_update_then_pass_then_new_finding_fails(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        baseline = str(tmp_path / "base.txt")
        assert main([path, "--baseline", baseline, "--update-baseline"]) == 0
        # Grandfathered finding no longer fails the lint...
        assert main([path, "--baseline", baseline]) == 0
        # ...but a new finding in the same file does.
        write(tmp_path, "dirty.py", DIRTY + "assert True\n")
        capsys.readouterr()
        assert main([path, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "no-bare-assert" in out and "no-wallclock" not in out

    def test_show_baselined_marks_old_findings(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        baseline = str(tmp_path / "base.txt")
        main([path, "--baseline", baseline, "--update-baseline"])
        capsys.readouterr()
        assert main([path, "--baseline", baseline, "--show-baselined"]) == 0
        assert "[baseline]" in capsys.readouterr().out

    def test_missing_baseline_file_means_empty(self, tmp_path):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--baseline", str(tmp_path / "absent.txt")]) == 1


class TestModuleEntryPoint:
    def test_python_dash_m_on_repo_tree(self):
        """The exact invocation CI runs, from the repo root."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.simlint", "src/repro"],
            cwd=REPO_ROOT,
            env=SUBPROCESS_ENV,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_python_dash_m_flags_seeded_violation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.simlint", str(bad)],
            cwd=REPO_ROOT,
            env=SUBPROCESS_ENV,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 1
        assert "no-unseeded-rng" in result.stdout
        assert f"{bad}:2:" in result.stdout
