"""Edge-case tests for the process framework."""

import pytest

from repro.sim import CancelledError, SimulationError, Simulator


class TestProcessEdgeCases:
    def test_process_with_immediate_return(self):
        sim = Simulator()

        def instant():
            return "done"
            yield  # pragma: no cover - makes this a generator

        proc = sim.process(instant())
        sim.run()
        assert proc.done
        assert proc.result == "done"

    def test_nested_process_chain(self):
        sim = Simulator()

        def leaf():
            yield 1.0
            return 1

        def middle():
            value = yield sim.process(leaf())
            yield 1.0
            return value + 1

        def top():
            value = yield sim.process(middle())
            return value + 1

        proc = sim.process(top())
        sim.run()
        assert proc.result == 3
        assert sim.now == 2.0

    def test_cancel_while_waiting_on_signal(self):
        sim = Simulator()
        sig = sim.signal()
        caught = []

        def waiter():
            try:
                yield sig
            except CancelledError:
                caught.append(sim.now)

        proc = sim.process(waiter())
        sim.schedule(1.0, proc.cancel)
        sim.run()
        assert caught == [1.0]
        # Firing the signal later must not resurrect the dead process.
        sig.fire("late")
        assert proc.done

    def test_exception_in_process_propagates(self):
        sim = Simulator()

        def broken():
            yield 1.0
            raise RuntimeError("boom")

        sim.process(broken())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_many_waiters_on_one_signal(self):
        sim = Simulator()
        sig = sim.signal()
        results = []

        def waiter(tag):
            value = yield sig
            results.append((tag, value))

        for tag in range(5):
            sim.process(waiter(tag))
        sim.schedule(1.0, sig.fire, 42)
        sim.run()
        assert results == [(tag, 42) for tag in range(5)]

    def test_process_waiting_on_finished_process(self):
        sim = Simulator()

        def quick():
            yield 0.5
            return "early"

        quick_proc = sim.process(quick())

        def late_joiner():
            yield 2.0  # quick has long finished
            value = yield quick_proc
            return value

        proc = sim.process(late_joiner())
        sim.run()
        assert proc.result == "early"
        assert sim.now == 2.0

    def test_zero_delay_yield_runs_same_timestamp(self):
        sim = Simulator()
        stamps = []

        def hopper():
            for _ in range(3):
                yield 0.0
                stamps.append(sim.now)

        sim.process(hopper())
        sim.run()
        assert stamps == [0.0, 0.0, 0.0]
