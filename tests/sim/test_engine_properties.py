"""Property tests: ``schedule_bulk`` is observably ``N × schedule``.

The bulk path shares one heap restore across a batch (docs/PERF.md); these
properties pin the contract the optimisation must keep: identical dispatch
order (including ties against each other and against singly-scheduled
timers), identical rejection of NaN/inf/negative delays, and — the
mid-batch failure case — a heap that stays valid and usable after a batch
raises partway through.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator

# Tie-heavy delays: a small pool of exact values makes equal timestamps
# common, which is where tie-break (sequence-number) bugs live; the float
# strategy adds arbitrary-precision spread.
DELAYS = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0]),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
)

BAD_DELAYS = st.sampled_from([float("nan"), float("inf"), -1.0, -1e-9])


@given(delays=st.lists(DELAYS, max_size=50))
def test_bulk_matches_sequential_dispatch_order(delays):
    bulk_sim = Simulator()
    bulk_seen: list = []
    bulk_sim.schedule_bulk(
        [(delay, bulk_seen.append, (index,)) for index, delay in enumerate(delays)]
    )
    bulk_sim.run()

    seq_sim = Simulator()
    seq_seen: list = []
    for index, delay in enumerate(delays):
        seq_sim.schedule(delay, seq_seen.append, index)
    seq_sim.run()

    assert bulk_seen == seq_seen
    assert bulk_sim.now == seq_sim.now
    assert bulk_sim.events_processed == seq_sim.events_processed


@given(
    singles=st.lists(DELAYS, max_size=20),
    batch=st.lists(DELAYS, max_size=20),
)
def test_bulk_ties_against_prescheduled_singles(singles, batch):
    def run(use_bulk: bool):
        sim = Simulator()
        seen: list = []
        for index, delay in enumerate(singles):
            sim.schedule(delay, seen.append, ("single", index))
        entries = [
            (delay, seen.append, (("bulk", index),))
            for index, delay in enumerate(batch)
        ]
        if use_bulk:
            sim.schedule_bulk(entries)
        else:
            for delay, callback, args in entries:
                sim.schedule(delay, callback, *args)
        sim.run()
        return seen

    assert run(use_bulk=True) == run(use_bulk=False)


@given(delay=BAD_DELAYS)
def test_rejection_parity(delay):
    with pytest.raises(SimulationError):
        Simulator().schedule(delay, lambda: None)
    with pytest.raises(SimulationError):
        Simulator().schedule_bulk([(delay, lambda: None, ())])


@given(
    prefix=st.lists(DELAYS, max_size=15),
    bad=BAD_DELAYS,
    suffix=st.lists(DELAYS, max_size=15),
    after=st.lists(DELAYS, min_size=1, max_size=10),
)
@settings(max_examples=60)
def test_mid_batch_failure_leaves_a_usable_heap(prefix, bad, suffix, after):
    """A batch that raises partway through must behave exactly like the
    sequential loop that raises at the same entry: the valid prefix stays
    scheduled, nothing after the bad entry lands, and later scheduling —
    including ties against the surviving prefix — is unaffected."""

    def run(use_bulk: bool):
        sim = Simulator()
        seen: list = []
        entries = (
            [(delay, seen.append, ((("pre", i)),)) for i, delay in enumerate(prefix)]
            + [(bad, seen.append, ("bad",))]
            + [(delay, seen.append, ((("post", i)),)) for i, delay in enumerate(suffix)]
        )
        if use_bulk:
            with pytest.raises(SimulationError):
                sim.schedule_bulk(entries)
        else:
            with pytest.raises(SimulationError):
                for delay, callback, args in entries:
                    sim.schedule(delay, callback, *args)
        # The engine must still be fully usable: later timers tie-break
        # deterministically against the surviving prefix.
        for index, delay in enumerate(after):
            sim.schedule(delay, seen.append, ("after", index))
        sim.run()
        return seen

    assert run(use_bulk=True) == run(use_bulk=False)


@given(delays=st.lists(DELAYS, min_size=1, max_size=30))
def test_bulk_events_are_cancellable(delays):
    sim = Simulator()
    seen: list = []
    events = sim.schedule_bulk(
        [(delay, seen.append, (index,)) for index, delay in enumerate(delays)]
    )
    events[0].cancel()
    sim.run()
    assert 0 not in seen and len(seen) == len(delays) - 1


def test_nan_never_reaches_the_heap():
    # Regression shape for the mid-batch fix: a NaN timestamp sitting in
    # the heap would poison every later comparison.  After a failed batch
    # the heap must contain only finite times.
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_bulk(
            [(1.0, lambda: None, ()), (float("nan"), lambda: None, ())]
        )
    assert all(math.isfinite(entry[0]) for entry in sim._heap)
    assert sim.peek() == 1.0
