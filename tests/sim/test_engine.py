"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import CancelledError, Signal, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append("b"))
    sim.schedule(1.0, lambda: seen.append("a"))
    sim.schedule(3.0, lambda: seen.append("c"))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(5.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [5.0]


def test_cancelled_event_does_not_run():
    sim = Simulator()
    hits = []
    event = sim.schedule(1.0, lambda: hits.append(1))
    event.cancel()
    sim.run()
    assert hits == []


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_does_not_run_later_events():
    sim = Simulator()
    hits = []
    sim.schedule(5.0, lambda: hits.append("early"))
    sim.schedule(15.0, lambda: hits.append("late"))
    sim.run(until=10.0)
    assert hits == ["early"]
    assert sim.now == 10.0
    sim.run(until=20.0)
    assert hits == ["early", "late"]


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    hits = []

    def chain():
        hits.append(sim.now)
        if len(hits) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(0.0, chain)
    sim.run()
    assert hits == [0.0, 1.0, 2.0]


class TestSignal:
    def test_fire_resumes_waiters_with_value(self):
        sim = Simulator()
        sig = sim.signal()
        got = []
        sig.wait(got.append)
        sig.fire(42)
        assert got == [42]

    def test_wait_after_fire_resumes_immediately(self):
        sim = Simulator()
        sig = sim.signal()
        sig.fire("x")
        got = []
        sig.wait(got.append)
        assert got == ["x"]

    def test_double_fire_rejected(self):
        sim = Simulator()
        sig = sim.signal()
        sig.fire()
        with pytest.raises(SimulationError):
            sig.fire()

    def test_multiple_waiters_in_order(self):
        sim = Simulator()
        sig = sim.signal()
        got = []
        sig.wait(lambda v: got.append(("a", v)))
        sig.wait(lambda v: got.append(("b", v)))
        sig.fire(1)
        assert got == [("a", 1), ("b", 1)]


class TestProcess:
    def test_yield_delay_sleeps(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(sim.now)
            yield 1.5
            trace.append(sim.now)

        sim.process(worker())
        sim.run()
        assert trace == [0.0, 1.5]

    def test_return_value_captured(self):
        sim = Simulator()

        def worker():
            yield 1.0
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.done
        assert proc.result == "done"

    def test_yield_signal_receives_value(self):
        sim = Simulator()
        sig = sim.signal()
        got = []

        def worker():
            value = yield sig
            got.append(value)

        sim.process(worker())
        sim.schedule(2.0, sig.fire, "payload")
        sim.run()
        assert got == ["payload"]
        assert sim.now == 2.0

    def test_yield_process_waits_for_completion(self):
        sim = Simulator()

        def child():
            yield 3.0
            return 7

        def parent():
            result = yield sim.process(child())
            return result * 2

        proc = sim.process(parent())
        sim.run()
        assert proc.result == 14

    def test_cancel_interrupts_sleep(self):
        sim = Simulator()
        trace = []

        def worker():
            try:
                yield 100.0
            except CancelledError:
                trace.append(("cancelled", sim.now))

        proc = sim.process(worker())
        sim.schedule(1.0, proc.cancel)
        sim.run()
        assert trace == [("cancelled", 1.0)]
        assert proc.done

    def test_cancel_is_idempotent(self):
        sim = Simulator()

        def worker():
            yield 100.0

        proc = sim.process(worker())
        sim.schedule(1.0, proc.cancel)
        sim.schedule(1.0, proc.cancel)
        sim.run()
        assert proc.done

    def test_cancel_after_done_is_noop(self):
        sim = Simulator()

        def worker():
            yield 1.0

        proc = sim.process(worker())
        sim.run()
        proc.cancel()
        assert proc.done

    def test_bad_yield_raises(self):
        sim = Simulator()

        def worker():
            yield "nonsense"

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_raises(self):
        sim = Simulator()

        def worker():
            yield -1.0

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_many_processes_interleave_deterministically(self):
        sim = Simulator()
        trace = []

        def worker(tag, period):
            for _ in range(3):
                yield period
                trace.append((tag, sim.now))

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.5))
        sim.run()
        # At t=3.0 both wake; b's event was inserted earlier (scheduled at
        # t=1.5 vs a's at t=2.0), so insertion order puts b first.
        assert trace == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]


def test_schedule_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_inf_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


class TestScheduleBulk:
    def test_matches_sequential_schedule_order(self):
        # Bulk entries get consecutive sequence numbers in iteration
        # order, so ties against each other and against earlier
        # singly-scheduled timers resolve exactly as schedule() would.
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "single")
        sim.schedule_bulk(
            [
                (1.0, seen.append, ("bulk-a",)),
                (0.5, seen.append, ("bulk-b",)),
                (1.0, seen.append, ("bulk-c",)),
            ]
        )
        sim.run()
        assert seen == ["bulk-b", "single", "bulk-a", "bulk-c"]

    def test_returns_cancellable_events(self):
        sim = Simulator()
        seen = []
        events = sim.schedule_bulk(
            [(1.0, seen.append, ("x",)), (2.0, seen.append, ("y",))]
        )
        assert len(events) == 2
        events[0].cancel()
        sim.run()
        assert seen == ["y"]

    def test_rejects_nan_inf_and_negative_delays(self):
        sim = Simulator()
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(SimulationError):
                sim.schedule_bulk([(bad, lambda: None, ())])

    def test_empty_batch_is_noop(self):
        sim = Simulator()
        assert sim.schedule_bulk([]) == []
        assert not sim.step()
