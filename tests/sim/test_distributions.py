"""Unit and property tests for random streams and latency distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import LatencyDistribution, RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream_reproduces(self):
        first = RandomStreams(seed=7).stream("dev").random(5)
        second = RandomStreams(seed=7).stream("dev").random(5)
        assert np.array_equal(first, second)

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random(5)
        b = RandomStreams(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        plain = RandomStreams(seed=3)
        first = plain.stream("main").random(3)

        noisy = RandomStreams(seed=3)
        noisy.stream("other").random(100)
        second = noisy.stream("main").random(3)
        assert np.array_equal(first, second)


class TestLatencyDistribution:
    def test_zero_sigma_is_constant(self):
        dist = LatencyDistribution(median=1e-4, sigma=0.0)
        rng = np.random.default_rng(0)
        samples = [dist.sample(rng) for _ in range(10)]
        assert all(s == 1e-4 for s in samples)

    def test_median_is_roughly_respected(self):
        dist = LatencyDistribution(median=100e-6, sigma=0.3)
        rng = np.random.default_rng(0)
        samples = sorted(dist.sample(rng) for _ in range(4001))
        observed_median = samples[len(samples) // 2]
        assert observed_median == pytest.approx(100e-6, rel=0.1)

    def test_tail_inflates_high_percentiles(self):
        base = LatencyDistribution(median=100e-6, sigma=0.2)
        tailed = LatencyDistribution(median=100e-6, sigma=0.2, tail_prob=0.05, tail_scale=20.0)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        base_p99 = np.percentile([base.sample(rng_a) for _ in range(4000)], 99)
        tail_p99 = np.percentile([tailed.sample(rng_b) for _ in range(4000)], 99)
        assert tail_p99 > 5 * base_p99

    def test_nonpositive_median_rejected(self):
        with pytest.raises(ValueError):
            LatencyDistribution(median=0.0)
        with pytest.raises(ValueError):
            LatencyDistribution(median=-1.0)

    def test_scaled_scales_median_only(self):
        dist = LatencyDistribution(median=1e-3, sigma=0.4, tail_prob=0.1, tail_scale=3.0)
        scaled = dist.scaled(2.0)
        assert scaled.median == 2e-3
        assert scaled.sigma == dist.sigma
        assert scaled.tail_prob == dist.tail_prob
        assert scaled.tail_scale == dist.tail_scale

    @given(
        median=st.floats(min_value=1e-7, max_value=1.0),
        sigma=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_samples_always_positive(self, median, sigma):
        dist = LatencyDistribution(median=median, sigma=sigma)
        rng = np.random.default_rng(0)
        assert dist.sample(rng) > 0
