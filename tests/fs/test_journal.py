"""Tests for the shared journal and its §3.5 entanglement."""

import numpy as np
import pytest

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.debt import SwapChargeMode
from repro.core.qos import QoSParams
from repro.fs.journal import Journal
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

SPEC = DeviceSpec(
    name="jdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.0,
    nr_slots=64,
)


def make_env(controller=None):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    controller = controller or NoopController()
    layer = BlockLayer(sim, device, controller)
    journal = Journal(sim, layer, commit_interval=0.05)
    tree = CgroupTree()
    return sim, layer, journal, tree


def run_op(sim, gen):
    proc = sim.process(gen)
    while not proc.done:
        sim.step()
    return proc


class TestCommitMachinery:
    def test_fsync_commits_pending_records(self):
        sim, layer, journal, tree = make_env()
        group = tree.create("a")
        journal.log(group, 4096)
        journal.log(group, 8192)
        run_op(sim, journal.fsync(group))
        assert journal.stats.commits == 1
        assert journal.stats.records_written == 2
        assert journal.stats.forced_commits == 1
        assert journal.pending_records == 0
        journal.close()

    def test_periodic_commit_without_fsync(self):
        sim, layer, journal, tree = make_env()
        group = tree.create("a")
        journal.log(group, 4096)
        sim.run(until=0.2)
        assert journal.stats.commits >= 1
        assert journal.stats.forced_commits == 0
        journal.close()

    def test_fsync_with_empty_journal_returns_immediately(self):
        sim, layer, journal, tree = make_env()
        group = tree.create("a")
        start = sim.now
        run_op(sim, journal.fsync(group))
        assert sim.now == start
        assert journal.stats.commits == 0
        journal.close()

    def test_journal_bios_carry_flag_and_owner(self):
        sim, layer, journal, tree = make_env()
        a = tree.create("a")
        b = tree.create("b")
        journal.log(a, 4096)
        journal.log(b, 4096)
        run_op(sim, journal.fsync(a))
        assert a.stats.wbytes >= 4096
        assert b.stats.wbytes >= 4096
        journal.close()

    def test_concurrent_fsync_joins_inflight_commit(self):
        sim, layer, journal, tree = make_env()
        a = tree.create("a")
        journal.log(a, 4096)
        first = sim.process(journal.fsync(a))
        second = sim.process(journal.fsync(a))
        sim.run(until=0.02)
        assert first.done and second.done
        assert journal.stats.commits == 1
        journal.close()

    def test_invalid_inputs(self):
        sim, layer, journal, tree = make_env()
        group = tree.create("a")
        with pytest.raises(ValueError):
            journal.log(group, 0)
        with pytest.raises(ValueError):
            Journal(sim, layer, commit_interval=0.0)
        journal.close()


class TestPriorityInversion:
    def make_iocost_env(self, swap_mode):
        sim = Simulator()
        device = Device(sim, SPEC, np.random.default_rng(0))
        controller = IOCost(
            LinearCostModel(ModelParams.from_device_spec(SPEC)),
            qos=QoSParams(
                read_lat_target=None, write_lat_target=None,
                vrate_min=1.0, vrate_max=1.0, period=0.025,
            ),
            swap_mode=swap_mode,
        )
        layer = BlockLayer(sim, device, controller)
        journal = Journal(sim, layer, commit_interval=10.0)  # fsync-driven
        tree = CgroupTree()
        return sim, layer, controller, journal, tree

    def fsync_duration(self, swap_mode):
        sim, layer, controller, journal, tree = self.make_iocost_env(swap_mode)
        hog = tree.create("hog", weight=25)
        innocent = tree.create("innocent", weight=500)
        # The hog saturates its tiny budget with its own writes and has
        # logged a large batch of journal records.
        ClosedLoopWorkload(
            sim, layer, hog, op=IOOp.WRITE, depth=64, stop_at=5.0, seed=1
        ).start()
        sim.run(until=0.2)
        for _ in range(64):
            journal.log(hog, 4096)
        journal.log(innocent, 4096)
        start = sim.now
        run_op(sim, journal.fsync(innocent))
        duration = sim.now - start
        journal.close()
        controller.detach()
        return duration

    def test_debt_mode_avoids_journal_inversion(self):
        # The innocent cgroup's fsync waits on the hog's journal records.
        # Production debt mode issues them immediately; origin-throttle
        # queues them behind the hog's exhausted budget.
        fast = self.fsync_duration(SwapChargeMode.DEBT)
        slow = self.fsync_duration(SwapChargeMode.ORIGIN_THROTTLE)
        assert fast < 0.5 * slow
