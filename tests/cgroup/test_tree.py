"""Unit and property tests for the cgroup tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgroup import (
    Cgroup,
    CgroupError,
    CgroupTree,
    MAX_WEIGHT,
    MIN_WEIGHT,
    make_meta_hierarchy,
)


class TestTopology:
    def test_root_exists(self):
        tree = CgroupTree()
        assert tree.root.is_root
        assert tree.root.path == ""
        assert len(tree) == 1

    def test_create_nested_path_creates_intermediates(self):
        tree = CgroupTree()
        leaf = tree.create("a/b/c")
        assert leaf.path == "a/b/c"
        assert "a" in tree and "a/b" in tree
        assert tree.lookup("a/b") is leaf.parent

    def test_create_duplicate_rejected(self):
        tree = CgroupTree()
        tree.create("a")
        with pytest.raises(CgroupError):
            tree.create("a")

    def test_create_root_rejected(self):
        tree = CgroupTree()
        with pytest.raises(CgroupError):
            tree.create("")

    def test_lookup_missing_raises(self):
        tree = CgroupTree()
        with pytest.raises(CgroupError):
            tree.lookup("ghost")

    def test_get_or_create_idempotent(self):
        tree = CgroupTree()
        a = tree.get_or_create("x", weight=42)
        b = tree.get_or_create("x", weight=99)
        assert a is b
        assert a.weight == 42

    def test_remove_leaf(self):
        tree = CgroupTree()
        tree.create("a/b")
        tree.remove("a/b")
        assert "a/b" not in tree
        assert "a" in tree

    def test_remove_nonleaf_rejected(self):
        tree = CgroupTree()
        tree.create("a/b")
        with pytest.raises(CgroupError):
            tree.remove("a")

    def test_remove_root_rejected(self):
        tree = CgroupTree()
        with pytest.raises(CgroupError):
            tree.remove("")

    def test_ancestors_order(self):
        tree = CgroupTree()
        leaf = tree.create("a/b/c")
        paths = [g.path for g in leaf.ancestors()]
        assert paths == ["a/b", "a", ""]
        paths_self = [g.path for g in leaf.ancestors(include_self=True)]
        assert paths_self == ["a/b/c", "a/b", "a", ""]

    def test_walk_is_preorder(self):
        tree = CgroupTree()
        tree.create("a/x")
        tree.create("a/y")
        tree.create("b")
        paths = [g.path for g in tree]
        assert paths == ["", "a", "a/x", "a/y", "b"]

    def test_name_with_slash_rejected(self):
        with pytest.raises(CgroupError):
            Cgroup("a/b", None)


class TestWeights:
    def test_default_weight(self):
        tree = CgroupTree()
        assert tree.create("a").weight == 100

    @pytest.mark.parametrize("weight", [MIN_WEIGHT, 100, MAX_WEIGHT])
    def test_valid_weights_accepted(self, weight):
        tree = CgroupTree()
        assert tree.create("a", weight=weight).weight == weight

    @pytest.mark.parametrize("weight", [0, -5, MAX_WEIGHT + 1])
    def test_invalid_weights_rejected(self, weight):
        tree = CgroupTree()
        with pytest.raises(CgroupError):
            tree.create("a", weight=weight)

    def test_weight_update_validated(self):
        tree = CgroupTree()
        group = tree.create("a")
        group.weight = 250
        assert group.weight == 250
        with pytest.raises(CgroupError):
            group.weight = 0

    @given(weight=st.integers(min_value=MIN_WEIGHT, max_value=MAX_WEIGHT))
    @settings(max_examples=30)
    def test_weight_roundtrip(self, weight):
        tree = CgroupTree()
        group = tree.create("a", weight=weight)
        assert group.weight == weight


class TestIOStats:
    def test_account_reads_and_writes(self):
        tree = CgroupTree()
        group = tree.create("a")
        group.stats.account(is_write=False, nbytes=4096)
        group.stats.account(is_write=True, nbytes=8192)
        assert group.stats.rbytes == 4096
        assert group.stats.wbytes == 8192
        assert group.stats.rios == 1
        assert group.stats.wios == 1
        assert group.stats.total_bytes == 12288
        assert group.stats.total_ios == 2


class TestMetaHierarchy:
    def test_standard_slices_present(self):
        tree = make_meta_hierarchy()
        assert "system.slice" in tree
        assert "hostcritical.slice" in tree
        assert "workload.slice" in tree

    def test_workload_children(self):
        tree = make_meta_hierarchy(workloads={"web": 200, "cache": 100})
        assert tree.lookup("workload.slice/web").weight == 200
        assert tree.lookup("workload.slice/cache").weight == 100

    def test_reuses_existing_tree(self):
        tree = CgroupTree()
        result = make_meta_hierarchy(tree)
        assert result is tree
