"""Per-device IOStats records and the wait_total/wait_usec unit contract."""

import pytest

from repro.cgroup import Cgroup, CgroupIOStats, CgroupTree, IOStats, UNATTRIBUTED_DEV


class TestPerDeviceRecords:
    def test_account_keys_by_device(self):
        stats = CgroupIOStats()
        stats.account(False, 4096, "8:0")
        stats.account(True, 8192, "8:16")
        stats.account(True, 4096, "8:16")
        assert stats.device("8:0").rbytes == 4096
        assert stats.device("8:0").wbytes == 0
        assert stats.device("8:16").wbytes == 12288
        assert stats.device("8:16").wios == 2
        assert dict(stats.devices()).keys() == {"8:0", "8:16"}

    def test_unattributed_default_device(self):
        stats = CgroupIOStats()
        stats.account(False, 4096)
        assert stats.device(UNATTRIBUTED_DEV).rios == 1

    def test_aggregates_sum_over_devices(self):
        """The legacy single-device surface remains as aggregate properties."""
        stats = CgroupIOStats()
        stats.account(False, 4096, "8:0")
        stats.account(True, 8192, "8:16")
        stats.device("8:0").wait_total += 0.25
        stats.device("8:16").wait_total += 0.75
        assert stats.rbytes == 4096
        assert stats.wbytes == 8192
        assert stats.rios == 1
        assert stats.wios == 1
        assert stats.dbytes == 0
        assert stats.dios == 0
        assert stats.total_bytes == 12288
        assert stats.total_ios == 2
        assert stats.wait_total == pytest.approx(1.0)

    def test_cgroup_carries_per_device_stats(self):
        tree = CgroupTree()
        group = tree.create("a")
        assert isinstance(group.stats, CgroupIOStats)
        group.stats.account(True, 4096, "8:0")
        assert group.stats.device("8:0").wios == 1


class TestWaitUnitContract:
    """Satellite: wait_total is seconds; wait_usec is the one conversion."""

    def test_iostats_wait_usec_is_seconds_times_1e6(self):
        record = IOStats()
        record.wait_total = 0.001234  # seconds
        assert record.wait_usec == pytest.approx(1234.0)

    def test_aggregate_wait_usec_matches_sum_of_records(self):
        stats = CgroupIOStats()
        stats.device("8:0").wait_total = 0.5
        stats.device("8:16").wait_total = 0.25
        assert stats.wait_usec == pytest.approx(0.75e6)
        assert stats.wait_usec == pytest.approx(stats.wait_total * 1e6)

    def test_iostat_surface_uses_the_property(self):
        """obs.iostat must not re-implement the conversion inline."""
        import inspect

        from repro.obs import iostat as iostat_mod

        source = inspect.getsource(iostat_mod._flat)
        assert "wait_usec" in source
        assert "1e6" not in source
