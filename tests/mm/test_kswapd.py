"""Tests for background reclaim (kswapd)."""

import numpy as np
import pytest

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.mm.memory import MemoryManager
from repro.sim import Simulator

MB = 1024 * 1024

SPEC = DeviceSpec(
    name="kswapdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.0,
    nr_slots=64,
)


def make_env(total=128 * MB, kswapd=True):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    layer = BlockLayer(sim, device, NoopController())
    mm = MemoryManager(sim, layer, total_bytes=total, swap_bytes=16 * total, kswapd=kswapd)
    tree = CgroupTree()
    return sim, layer, mm, tree


def run_op(sim, gen):
    proc = sim.process(gen)
    while not proc.done:
        sim.step()
    return proc


def test_kswapd_wakes_below_low_watermark():
    sim, layer, mm, tree = make_env()
    group = tree.create("a")
    # Fill to just above the low watermark boundary.
    target = mm.total_bytes - mm.low_watermark + MB
    run_op(sim, mm.alloc(group, target))
    # kswapd kicked in and freed back towards the high watermark.
    sim.run(until=sim.now + 5.0)
    assert mm.kswapd_reclaimed_total > 0
    assert mm.free_bytes >= mm.low_watermark


def test_kswapd_disabled_leaves_direct_reclaim_only():
    sim, layer, mm, tree = make_env(kswapd=False)
    group = tree.create("a")
    run_op(sim, mm.alloc(group, mm.total_bytes - mm.low_watermark + MB))
    sim.run(until=sim.now + 5.0)
    assert mm.kswapd_reclaimed_total == 0


def test_kswapd_respects_protection():
    sim, layer, mm, tree = make_env()
    prot = tree.create("prot")
    mm.protected["prot"] = 120 * MB
    run_op(sim, mm.alloc(prot, 120 * MB))
    other = tree.create("other")
    run_op(sim, mm.alloc(other, 6 * MB))
    sim.run(until=sim.now + 5.0)
    assert mm.state_of(prot).swapped == 0


def test_kswapd_keeps_allocations_from_blocking():
    # With kswapd maintaining the watermark, small allocations proceed
    # without waiting on reclaim IO most of the time.
    sim, layer, mm, tree = make_env()
    group = tree.create("a")
    run_op(sim, mm.alloc(group, mm.total_bytes - mm.high_watermark))
    sim.run(until=sim.now + 2.0)  # let kswapd settle at the watermark
    start = sim.now
    run_op(sim, mm.alloc(group, 1 * MB))
    first_wait = sim.now - start
    assert first_wait < 0.05  # no long direct-reclaim stall


def test_kswapd_stops_when_swap_full():
    sim, layer, mm, tree = make_env()
    mm.swap_bytes = 4 * MB
    group = tree.create("a")
    run_op(sim, mm.alloc(group, mm.total_bytes - mm.low_watermark + MB))
    sim.run(until=sim.now + 5.0)
    assert mm.swapped_total <= mm.swap_bytes
