"""Tests for the memory-management substrate."""

import numpy as np
import pytest

from repro.block.bio import BioFlags
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.debt import SwapChargeMode
from repro.core.qos import QoSParams
from repro.mm.memory import MemoryManager, MemoryPressureError
from repro.sim import Simulator

MB = 1024 * 1024

SPEC = DeviceSpec(
    name="mmdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.0,
    nr_slots=64,
)


def make_env(controller=None, total=64 * MB, swap=256 * MB, protected=None):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    controller = controller or NoopController()
    layer = BlockLayer(sim, device, controller)
    mm = MemoryManager(sim, layer, total_bytes=total, swap_bytes=swap, protected=protected)
    tree = CgroupTree()
    return sim, layer, mm, tree


def run_op(sim, gen):
    """Run the simulator until the operation's process completes.

    Stepping (rather than draining the heap) matters: controllers with
    periodic timers reschedule themselves forever.
    """
    proc = sim.process(gen)
    while not proc.done:
        if not sim.step():
            raise AssertionError("simulation drained before operation finished")
    return proc


class TestAccounting:
    def test_alloc_within_memory_is_instant(self):
        sim, layer, mm, tree = make_env()
        group = tree.create("a")
        run_op(sim, mm.alloc(group, 10 * MB))
        assert mm.state_of(group).resident == 10 * MB
        assert sim.now == 0.0  # no reclaim, no IO
        assert mm.free_bytes == 54 * MB

    def test_free_releases(self):
        sim, layer, mm, tree = make_env()
        group = tree.create("a")
        run_op(sim, mm.alloc(group, 10 * MB))
        mm.free(group, 4 * MB)
        assert mm.state_of(group).resident == 6 * MB
        mm.free(group)
        assert mm.state_of(group).total == 0

    def test_negative_alloc_rejected(self):
        sim, layer, mm, tree = make_env()
        group = tree.create("a")
        with pytest.raises(ValueError):
            run_op(sim, mm.alloc(group, -1))


class TestReclaim:
    def test_overcommit_swaps_out_mostly_the_big_owner(self):
        sim, layer, mm, tree = make_env(total=64 * MB)
        leaker = tree.create("leaker")
        victim_free = tree.create("app")
        run_op(sim, mm.alloc(leaker, 60 * MB))
        run_op(sim, mm.alloc(victim_free, 10 * MB))  # forces reclaim
        # Victims are sampled proportionally to resident size, so the big
        # owner absorbs the bulk of the eviction.
        assert mm.state_of(leaker).swapped >= 5 * MB
        assert mm.state_of(leaker).swapped > mm.state_of(victim_free).swapped
        assert mm.resident_total <= 64 * MB

    def test_swap_out_attribution_follows_mm_awareness(self):
        # Non-MM-aware controllers (here: none) see reclaim writeback in
        # the root cgroup — the Table 1 isolation failure.
        sim, layer, mm, tree = make_env(total=64 * MB)
        leaker = tree.create("leaker")
        app = tree.create("app")
        run_op(sim, mm.alloc(leaker, 60 * MB))
        run_op(sim, mm.alloc(app, 10 * MB))
        assert mm.state_of(leaker).swapped_out_total > 0
        assert tree.root.stats.wbytes >= mm.state_of(leaker).swapped_out_total
        assert leaker.stats.wbytes == 0

    def test_swap_out_charged_to_owner_under_mm_aware_controller(self):
        from repro.controllers.iolatency import IOLatencyController
        from repro.block.device import Device
        from repro.block.layer import BlockLayer
        import numpy as np

        sim = Simulator()
        device = Device(sim, SPEC, np.random.default_rng(0))
        layer = BlockLayer(sim, device, IOLatencyController())
        mm = MemoryManager(sim, layer, total_bytes=64 * MB, swap_bytes=256 * MB)
        tree = CgroupTree()
        leaker = tree.create("leaker")
        app = tree.create("app")
        run_op(sim, mm.alloc(leaker, 60 * MB))
        run_op(sim, mm.alloc(app, 10 * MB))
        leaker_out = mm.state_of(leaker).swapped_out_total
        assert leaker_out > 0
        assert leaker.stats.wbytes >= leaker_out
        assert tree.root.stats.wbytes == 0

    def test_allocator_waits_for_swap_io(self):
        sim, layer, mm, tree = make_env(total=64 * MB)
        leaker = tree.create("leaker")
        app = tree.create("app")
        run_op(sim, mm.alloc(leaker, 60 * MB))
        start = sim.now
        run_op(sim, mm.alloc(app, 10 * MB))
        assert sim.now > start  # blocked on swap-out writes

    def test_protected_cgroup_not_reclaimed(self):
        sim, layer, mm, tree = make_env(
            total=64 * MB, protected={"prot": 30 * MB}
        )
        prot = tree.create("prot")
        other = tree.create("other")
        run_op(sim, mm.alloc(prot, 30 * MB))
        run_op(sim, mm.alloc(other, 20 * MB))
        run_op(sim, mm.alloc(other, 30 * MB))  # overcommit: other must self-swap
        assert mm.state_of(prot).swapped == 0
        assert mm.state_of(other).swapped > 0


class TestFaulting:
    def test_touch_resident_memory_is_free(self):
        sim, layer, mm, tree = make_env()
        group = tree.create("a")
        run_op(sim, mm.alloc(group, 10 * MB))
        before = sim.now
        run_op(sim, mm.touch(group, 10 * MB))
        assert sim.now == before
        assert group.stats.rbytes == 0

    def test_touch_swapped_memory_faults(self):
        sim, layer, mm, tree = make_env(total=64 * MB)
        group = tree.create("a")
        hog = tree.create("hog")
        run_op(sim, mm.alloc(group, 40 * MB))
        run_op(sim, mm.alloc(hog, 50 * MB))  # pushes `group` partially out
        swapped = mm.state_of(group).swapped
        assert swapped > 0
        run_op(sim, mm.touch(group, 20 * MB))
        state = mm.state_of(group)
        assert state.faulted_in_total > 0
        assert group.stats.rbytes > 0  # swap-in reads charged to faulter

    def test_fault_fraction_tracks_swapped_share(self):
        sim, layer, mm, tree = make_env(total=64 * MB)
        group = tree.create("a")
        hog = tree.create("hog")
        run_op(sim, mm.alloc(group, 40 * MB))
        run_op(sim, mm.alloc(hog, 44 * MB))
        state = mm.state_of(group)
        frac = state.swapped_fraction
        run_op(sim, mm.touch(group, 10 * MB))
        expected = int(10 * MB * frac)
        assert state.faulted_in_total == pytest.approx(expected, rel=0.05)


class TestOOM:
    def test_swap_exhaustion_triggers_oom(self):
        sim, layer, mm, tree = make_env(total=32 * MB, swap=16 * MB)
        leaker = tree.create("leaker")
        app = tree.create("app")
        killed = []
        mm.on_oom(leaker, lambda: killed.append("leaker"))
        run_op(sim, mm.alloc(leaker, 30 * MB))
        # app needs 20MB; swap can only hold 16MB => OOM kill of the leaker.
        run_op(sim, mm.alloc(app, 20 * MB))
        assert killed == ["leaker"]
        assert mm.oom_kills[0].cgroup_path == "leaker"
        assert mm.state_of(leaker).total == 0
        # The app got all 20 MB (some of it may itself have been swapped
        # during the contended allocation).
        assert mm.state_of(app).total == 20 * MB
        assert mm.state_of(app).resident > 0

    def test_oversized_allocation_gets_self_oom_killed(self):
        # With no swap, allocating 2x machine memory ends with the OOM
        # killer taking out the allocator itself; the allocation aborts.
        sim, layer, mm, tree = make_env(total=8 * MB, swap=0)
        group = tree.create("a")
        killed = []
        mm.on_oom(group, lambda: killed.append("a"))
        run_op(sim, mm.alloc(group, 16 * MB))
        assert killed == ["a"]
        assert mm.state_of(group).resident < 16 * MB

    def test_allocation_with_no_consumers_raises(self):
        sim, layer, mm, tree = make_env(total=0, swap=0)
        group = tree.create("a")
        proc = sim.process(mm.alloc(group, 1 * MB))
        with pytest.raises(MemoryPressureError):
            while not proc.done:
                sim.step()


class TestDebtIntegration:
    def make_iocost_env(self, swap_mode):
        sim = Simulator()
        device = Device(sim, SPEC, np.random.default_rng(0))
        controller = IOCost(
            LinearCostModel(ModelParams.from_device_spec(SPEC)),
            qos=QoSParams(
                read_lat_target=None,
                write_lat_target=None,
                vrate_min=1.0,
                vrate_max=1.0,
                period=0.025,
            ),
            swap_mode=swap_mode,
        )
        layer = BlockLayer(sim, device, controller)
        mm = MemoryManager(sim, layer, total_bytes=64 * MB, swap_bytes=1024 * MB)
        tree = CgroupTree()
        return sim, layer, controller, mm, tree

    def test_debt_accrues_to_owner_when_others_allocate(self):
        # The paper's scenario: an innocent app's allocations push the
        # leaker's pages to swap.  The swap writes are charged to the
        # *leaker* as debt, and the leaker's next userspace boundary blocks.
        sim, layer, controller, mm, tree = self.make_iocost_env(SwapChargeMode.DEBT)
        # Like the paper's Figure 1 hierarchy, the leaker lives in a
        # low-weight slice: its tiny hweight makes swap IO far more
        # expensive in budget than the wall time it takes, so debt builds.
        leaker = tree.create("leaker", weight=25)
        app = tree.create("app", weight=500)
        run_op(sim, mm.alloc(leaker, 60 * MB))

        # The app also reads heavily, so the device is contended.
        from repro.block.bio import IOOp
        from tests.controllers.conftest import ClosedLoop

        ClosedLoop(sim, layer, app, op=IOOp.READ, depth=16, stop_at=10.0).start()

        def app_alloc_loop():
            for _ in range(80):
                yield from mm.alloc(app, 1 * MB)
            # App frees so the next round reclaims the leaker again.
            mm.free(app, 80 * MB)
            for _ in range(80):
                yield from mm.alloc(app, 1 * MB)

        run_op(sim, app_alloc_loop())
        state = controller.tree.lookup("leaker")
        assert controller.debt.debt_walltime(state) > 0

        # A return-to-userspace boundary with no IO of its own (touching
        # resident memory) is blocked by the outstanding debt.
        def leaker_boundary():
            yield from mm.touch(leaker, 0)

        blocks_before = controller.debt.userspace_blocks
        start = sim.now
        run_op(sim, leaker_boundary())
        assert controller.debt.userspace_blocks > blocks_before
        assert sim.now > start  # the thread actually slept

    def test_self_reclaim_pays_debt_by_waiting(self):
        # A group that both owns the memory and drives the allocation waits
        # for its own swap writes, so global vtime keeps pace: no residual
        # debt builds up and its userspace boundary is never blocked.
        sim, layer, controller, mm, tree = self.make_iocost_env(SwapChargeMode.DEBT)
        leaker = tree.create("leaker")
        run_op(sim, mm.alloc(leaker, 60 * MB))

        def leak_loop():
            for _ in range(100):
                yield from mm.alloc(leaker, 1 * MB)

        run_op(sim, leak_loop())
        assert controller.debt_charged > 0
        state = controller.tree.lookup("leaker")
        assert controller.debt.debt_walltime(state) < 0.01

    def test_root_mode_never_blocks_leaker(self):
        sim, layer, controller, mm, tree = self.make_iocost_env(SwapChargeMode.ROOT)
        leaker = tree.create("leaker")
        run_op(sim, mm.alloc(leaker, 60 * MB))

        def leak_loop():
            for _ in range(100):
                yield from mm.alloc(leaker, 1 * MB)

        run_op(sim, leak_loop())
        assert controller.debt.userspace_blocks == 0

    def test_debt_mode_faster_for_innocent_allocator_than_origin_throttle(self):
        durations = {}
        for mode in (SwapChargeMode.DEBT, SwapChargeMode.ORIGIN_THROTTLE):
            sim, layer, controller, mm, tree = self.make_iocost_env(mode)
            # Low-weight leaker: its budget drains slowly, so origin-side
            # throttling of its swap-outs visibly blocks the innocent app.
            leaker = tree.create("leaker", weight=25)
            app = tree.create("app", weight=500)
            run_op(sim, mm.alloc(leaker, 60 * MB))
            # Saturate the leaker's budget with its own writes first so its
            # queue is backlogged when the swap-out lands in it.
            from tests.controllers.conftest import ClosedLoop
            from repro.block.bio import IOOp

            ClosedLoop(sim, layer, leaker, op=IOOp.WRITE, depth=64, stop_at=5.0).start()
            ClosedLoop(sim, layer, app, op=IOOp.READ, depth=16, stop_at=5.0).start()
            sim.run(until=0.2)
            start = sim.now
            run_op(sim, mm.alloc(app, 20 * MB))
            durations[mode] = sim.now - start
        assert durations[SwapChargeMode.DEBT] < 0.5 * durations[SwapChargeMode.ORIGIN_THROTTLE]


class TestMemoryLimits:
    def test_limit_triggers_local_reclaim(self):
        sim, layer, mm, tree = make_env(total=256 * MB)
        group = tree.create("capped")
        mm.limits["capped"] = 32 * MB
        run_op(sim, mm.alloc(group, 64 * MB))
        state = mm.state_of(group)
        # Total charged is 64MB but resident stays near the limit.
        assert state.total == 64 * MB
        assert state.resident <= 32 * MB + 4 * 64 * 1024
        assert state.swapped >= 30 * MB

    def test_limit_generates_swap_io_despite_free_memory(self):
        # The §5 lesson: memory limits alone *create* reclaim IO — machine
        # memory is plentiful, yet the capped group churns swap.
        sim, layer, mm, tree = make_env(total=1024 * MB)
        group = tree.create("capped")
        mm.limits["capped"] = 16 * MB
        run_op(sim, mm.alloc(group, 48 * MB))
        assert mm.free_bytes > 900 * MB
        # Local-reclaim swap writes hit the device (charged to the reclaim
        # context under this non-MM-aware controller).
        assert mm.state_of(group).swapped_out_total >= 30 * MB
        assert layer.completed_bytes >= 30 * MB

    def test_uncapped_group_unaffected(self):
        sim, layer, mm, tree = make_env(total=256 * MB)
        capped = tree.create("capped")
        free_group = tree.create("free")
        mm.limits["capped"] = 16 * MB
        run_op(sim, mm.alloc(free_group, 64 * MB))
        assert mm.state_of(free_group).swapped == 0
