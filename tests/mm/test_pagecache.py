"""Tests for the page cache and dirty writeback."""

import numpy as np
import pytest

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.mm.pagecache import PageCache
from repro.sim import Simulator

MB = 1024 * 1024

SPEC = DeviceSpec(
    name="pcdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=200e6,
    write_bw=200e6,
    sigma=0.0,
    nr_slots=64,
)


def make_env(controller=None, background=4 * MB, limit=16 * MB):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    controller = controller or NoopController()
    layer = BlockLayer(sim, device, controller)
    cache = PageCache(sim, layer, background_bytes=background, limit_bytes=limit)
    tree = CgroupTree()
    return sim, layer, cache, tree


def run_op(sim, gen):
    proc = sim.process(gen)
    while not proc.done:
        sim.step()
    return proc


class TestBufferedWrites:
    def test_small_writes_do_not_touch_device(self):
        sim, layer, cache, tree = make_env()
        group = tree.create("a")
        run_op(sim, cache.buffered_write(group, 1 * MB))
        assert sim.now == 0.0
        assert layer.submitted_ios == 0
        assert cache.state_of(group).dirty == 1 * MB

    def test_background_flusher_kicks_past_threshold(self):
        sim, layer, cache, tree = make_env()
        group = tree.create("a")
        run_op(sim, cache.buffered_write(group, 6 * MB))  # > 4MB background
        sim.run(until=1.0)
        state = cache.state_of(group)
        assert state.written_back_total > 0
        assert state.dirty <= cache.background_bytes
        assert group.stats.wbytes == state.written_back_total

    def test_dirty_throttling_blocks_writer_at_limit(self):
        sim, layer, cache, tree = make_env()
        group = tree.create("a")

        def firehose():
            for _ in range(40):
                yield from cache.buffered_write(group, 1 * MB)

        run_op(sim, firehose())
        state = cache.state_of(group)
        assert state.throttled_time > 0
        # Never wildly above the hard limit.
        assert state.dirty <= cache.limit_bytes + 1 * MB

    def test_sync_drains_everything(self):
        sim, layer, cache, tree = make_env()
        group = tree.create("a")
        run_op(sim, cache.buffered_write(group, 3 * MB))
        run_op(sim, cache.sync(group))
        assert cache.state_of(group).dirty == 0
        assert cache.state_of(group).written_back_total == 3 * MB

    def test_invalid_inputs(self):
        sim, layer, cache, tree = make_env()
        group = tree.create("a")
        with pytest.raises(ValueError):
            run_op(sim, cache.buffered_write(group, 0))
        with pytest.raises(ValueError):
            PageCache(sim, layer, background_bytes=8, limit_bytes=8)

    def test_per_cgroup_isolation_of_accounting(self):
        sim, layer, cache, tree = make_env()
        a = tree.create("a")
        b = tree.create("b")
        run_op(sim, cache.buffered_write(a, 2 * MB))
        run_op(sim, cache.buffered_write(b, 1 * MB))
        assert cache.state_of(a).dirty == 2 * MB
        assert cache.state_of(b).dirty == 1 * MB
        assert cache.dirty_total == 3 * MB


class TestWritebackUnderIOCost:
    def test_low_weight_writer_paced_by_its_own_writeback(self):
        # A bulk buffered writer in a low-weight cgroup is ultimately paced
        # by how fast the controller lets its writeback flow: the dirty
        # limit turns controller throttling into writer throttling.
        sim = Simulator()
        device = Device(sim, SPEC, np.random.default_rng(0))
        controller = IOCost(
            LinearCostModel(ModelParams.from_device_spec(SPEC)),
            qos=QoSParams(
                read_lat_target=None, write_lat_target=None,
                vrate_min=1.0, vrate_max=1.0, period=0.025,
            ),
        )
        layer = BlockLayer(sim, device, controller)
        cache = PageCache(sim, layer, background_bytes=4 * MB, limit_bytes=16 * MB)
        tree = CgroupTree()
        bulk = tree.create("bulk", weight=25)
        reader_group = tree.create("reader", weight=500)

        from repro.workloads.synthetic import ClosedLoopWorkload

        ClosedLoopWorkload(
            sim, layer, reader_group, depth=16, stop_at=2.0, seed=2
        ).start()

        written = {"bytes": 0}

        def firehose():
            while sim.now < 2.0:
                yield from cache.buffered_write(bulk, 1 * MB)
                written["bytes"] += 1 * MB

        sim.process(firehose())
        sim.run(until=2.0)
        controller.detach()
        # The bulk writer's effective rate is bounded by its ~5% share of
        # the 200 MB/s device (plus the dirty allowance), far below what
        # the unthrottled page cache would accept.
        assert written["bytes"] < 60 * MB
        assert cache.state_of(bulk).throttled_time > 0.5
