"""Fleet-layer tests: specs, scheduler, rollups, sharded execution, CLI."""
