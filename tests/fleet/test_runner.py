"""Sharded fleet execution: ISSUE acceptance determinism at >= 200 hosts.

The load-bearing guarantee: a fleet sweep's ``result.json`` bytes — and
therefore its rollup bytes — are identical whether the hosts run on one
worker or eight, and a re-run over the same store is 100% cache hits.
"""

import itertools

import pytest

from repro.exp.grid import expand
from repro.exp.spec import canonical_json
from repro.exp.store import ArtifactStore
from repro.fleet.runner import (
    BENCH_SCHEMA,
    FleetRunnerError,
    fleet_sweep_spec,
    host_params,
    run_fleet_sweep,
    run_staged_migration,
)
from repro.fleet.scheduler import FleetScheduler, group_capacities
from repro.fleet.spec import FleetSpec

from tests.fleet.conftest import fleet_doc

#: The acceptance fleet: 210 hosts across two device generations, enough
#: paced workload instances that best-fit actually has to pack.
ACCEPTANCE_DOC = {
    "name": "determinism-210",
    "seed": 3,
    "policy": "best_fit",
    "capacity": "rated",
    "duration": 0.02,
    "hosts": {
        "web": {"count": 120, "device": "ssd_new", "device_scale": 0.05},
        "db": {"count": 90, "device": "ssd_old", "device_scale": 0.05},
    },
    "workloads": [
        {"name": "fe", "count": 150, "cgroup": "workload.slice/fe",
         "weight": 200, "type": "paced", "rate": 250},
        {"name": "bg", "count": 60, "cgroup": "workload.slice/bg",
         "weight": 50, "type": "paced", "rate": 150},
    ],
}


def placed_scheduler(spec):
    scheduler = FleetScheduler(spec, group_capacities(spec))
    scheduler.place()
    return scheduler


class TestHostParams:
    def test_shape(self):
        spec = FleetSpec.from_dict(fleet_doc())
        params = host_params(spec, placed_scheduler(spec))
        assert len(params) == 4
        assert [p["id"] for p in params] == [f"web/{i}" for i in range(4)]
        placed = [p for p in params if p["cgroups"]]
        for entry in placed:
            assert entry["controller"] == "iocost"
            assert all(w["type"] == "paced" for w in entry["workloads"])
            assert set(entry["cgroups"]) == {w["cgroup"] for w in entry["workloads"]}

    def test_controller_override_for_mixed_fleets(self):
        spec = FleetSpec.from_dict(fleet_doc())
        scheduler = placed_scheduler(spec)
        sweep = fleet_sweep_spec(
            spec, scheduler, controllers={"web/1": "iolatency"}
        )
        by_id = {
            run.params["host"]["id"]: run.params["host"]["controller"]
            for run in expand(sweep)
        }
        assert by_id["web/1"] == "iolatency"
        assert by_id["web/0"] == "iocost"


class TestFleetSweepAcceptance:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        spec = FleetSpec.from_dict(ACCEPTANCE_DOC)
        store_serial = ArtifactStore(tmp_path_factory.mktemp("serial"))
        store_pooled = ArtifactStore(tmp_path_factory.mktemp("pooled"))
        ticks = itertools.count()
        fake_clock = lambda: next(ticks) * 1e-3  # noqa: E731
        serial = run_fleet_sweep(spec, store_serial, workers=1, clock=fake_clock)
        pooled = run_fleet_sweep(spec, store_pooled, workers=4)
        return spec, store_serial, store_pooled, serial, pooled

    def test_fleet_is_big_enough(self, reports):
        _, _, _, serial, _ = reports
        assert serial.hosts_total == 210  # ISSUE floor: >= 200 hosts
        assert serial.sweep.failures == 0

    def test_result_bytes_identical_across_worker_counts(self, reports):
        spec, store_serial, store_pooled, serial, pooled = reports
        hashes_serial = sorted(o.run.run_hash for o in serial.sweep.outcomes)
        hashes_pooled = sorted(o.run.run_hash for o in pooled.sweep.outcomes)
        assert hashes_serial == hashes_pooled
        for run_hash in hashes_serial:
            assert store_serial.result_bytes(run_hash) == store_pooled.result_bytes(run_hash)

    def test_rollup_bytes_identical_across_worker_counts(self, reports):
        _, _, _, serial, pooled = reports
        assert canonical_json(serial.rollup) == canonical_json(pooled.rollup)
        assert canonical_json(serial.plan) == canonical_json(pooled.plan)

    def test_rerun_is_all_cache_hits(self, reports):
        spec, store_serial, _, serial, _ = reports
        again = run_fleet_sweep(spec, store_serial, workers=4)
        assert again.sweep.hit_rate == 1.0
        assert canonical_json(again.rollup) == canonical_json(serial.rollup)

    def test_rollup_reports_every_host(self, reports):
        _, _, _, serial, _ = reports
        assert serial.rollup["hosts"]["reporting"] == 210
        assert serial.rollup["hosts"]["missing"] == []
        workloads = serial.rollup["workloads"]
        assert set(workloads) == {"fe", "bg"}
        for name, count in (("fe", 150), ("bg", 60)):
            assert workloads[name]["placements_reporting"] == count
            p99 = workloads[name]["read_latency"]["p99"]
            assert p99["pooled"] is not None
            assert p99["pooled"] <= p99["host_max"]

    def test_bench_entry_schema(self, reports):
        _, _, _, serial, _ = reports
        entry = serial.to_bench_dict()
        assert entry["schema"] == BENCH_SCHEMA
        assert entry["hosts"] == 210
        assert entry["executed"] == 210
        assert entry["hosts_per_sec"] > 0


class TestRunnerErrors:
    def test_unknown_policy_pass(self, tmp_path):
        spec = FleetSpec.from_dict(fleet_doc())
        with pytest.raises(FleetRunnerError, match="rebalancing"):
            run_fleet_sweep(spec, tmp_path, policies=("defragment",))

    def test_migration_requires_plan(self, tmp_path):
        spec = FleetSpec.from_dict(fleet_doc())
        with pytest.raises(FleetRunnerError, match="migration"):
            run_staged_migration(spec, tmp_path)


class TestPolicyPasses:
    def test_balance_changes_plan_and_results_stay_deterministic(self, tmp_path):
        doc = fleet_doc(
            hosts={"web": {"count": 3, "device": "ssd_new",
                           "device_scale": 0.05, "capacity_iops": 1000}},
            workloads=[{"name": "u", "count": 4, "cgroup": "workload.slice/u",
                        "weight": 100, "type": "paced", "rate": 200}],
        )
        spec = FleetSpec.from_dict(doc)
        balanced = run_fleet_sweep(spec, tmp_path / "a", policies=("balance",))
        assert balanced.plan["migrations"]
        again = run_fleet_sweep(spec, tmp_path / "b", policies=("balance",))
        assert canonical_json(balanced.rollup) == canonical_json(again.rollup)
