"""The ``python -m repro.fleet`` front-end, exercised in-process."""

import json

import pytest

from repro.fleet.cli import append_bench_entry, main

from tests.fleet.conftest import FLEETDEV, fleet_doc


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(fleet_doc()))
    return path


class TestRun:
    def test_run_writes_artifacts(self, spec_path, store_dir, capsys):
        code = main(["run", str(spec_path), "--out", str(store_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "test-fleet" in out
        assert "4 hosts" in out
        rollup = json.loads((store_dir / "fleet_rollup.json").read_text())
        assert rollup["schema"] == "repro.fleet.rollup/1"
        assert rollup["hosts"]["reporting"] == 4
        plan = json.loads((store_dir / "fleet_plan.json").read_text())
        assert len(plan["hosts"]) == 4
        bench = json.loads((store_dir / "BENCH_fleet.json").read_text())
        assert isinstance(bench, list) and len(bench) == 1
        assert bench[0]["schema"] == "repro.fleet.bench/1"

    def test_second_run_hits_cache(self, spec_path, store_dir):
        assert main(["run", str(spec_path), "--out", str(store_dir),
                     "--quiet"]) == 0
        assert main(["run", str(spec_path), "--out", str(store_dir),
                     "--quiet", "--min-hit-rate", "1.0"]) == 0
        bench = json.loads((store_dir / "BENCH_fleet.json").read_text())
        assert len(bench) == 2  # the trajectory accumulates
        assert bench[1]["cache_hit_rate"] == 1.0

    def test_min_hit_rate_fails_cold(self, spec_path, store_dir, capsys):
        code = main(["run", str(spec_path), "--out", str(store_dir),
                     "--quiet", "--min-hit-rate", "1.0"])
        assert code == 1
        assert "below required" in capsys.readouterr().out

    def test_policy_pass_flag(self, spec_path, store_dir):
        code = main(["run", str(spec_path), "--out", str(store_dir),
                     "--quiet", "--policy-pass", "balance"])
        assert code == 0

    def test_bad_spec_exits_with_message(self, tmp_path, store_dir):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}))  # no hosts
        with pytest.raises(SystemExit, match="repro.fleet"):
            main(["run", str(path), "--out", str(store_dir)])


class TestStatusAndRollup:
    def test_status_cold_then_warm(self, spec_path, store_dir, capsys):
        assert main(["status", str(spec_path), "--out", str(store_dir)]) == 0
        assert "0/4 hosts cached" in capsys.readouterr().out
        main(["run", str(spec_path), "--out", str(store_dir), "--quiet"])
        assert main(["status", str(spec_path), "--out", str(store_dir)]) == 0
        assert "4/4 hosts cached" in capsys.readouterr().out

    def test_rollup_requires_cached_hosts(self, spec_path, store_dir, capsys):
        assert main(["rollup", str(spec_path), "--out", str(store_dir)]) == 1
        assert "not cached" in capsys.readouterr().out

    def test_rollup_recomputes_from_cache(self, spec_path, store_dir, capsys, tmp_path):
        main(["run", str(spec_path), "--out", str(store_dir), "--quiet"])
        out_file = tmp_path / "recomputed.json"
        code = main(["rollup", str(spec_path), "--out", str(store_dir),
                     "--output", str(out_file)])
        assert code == 0
        recomputed = json.loads(out_file.read_text())
        stored = json.loads((store_dir / "fleet_rollup.json").read_text())
        assert recomputed == stored


class TestMigrate:
    def test_migrate_writes_report(self, tmp_path, store_dir, capsys):
        doc = fleet_doc(
            name="cli-migration",
            hosts={"web": {"count": 2, "device": dict(FLEETDEV)}},
            workloads=[],
            migration={
                "schedule": [0.0, 1.0],
                "samples": 1,
                "tasks_per_host_week": 5,
                "settle": 0.2,
                "task": {
                    "name": "cleanup_small",
                    "cgroup": "hostcritical.slice",
                    "small_ios": 300,
                    "op": "write",
                    "deadline": 0.8,
                },
            },
        )
        path = tmp_path / "migration.json"
        path.write_text(json.dumps(doc))
        code = main(["migrate", str(path), "--out", str(store_dir),
                     "--workers", "2"])
        assert code == 0
        assert "Staged migration iolatency -> iocost" in capsys.readouterr().out
        report = json.loads((store_dir / "fleet_migration.json").read_text())
        assert report["schema"] == "repro.fleet.migration/1"
        assert len(report["weeks"]) == 2
        assert report["weeks"][-1]["failures"] <= report["weeks"][0]["failures"]


class TestBenchTrajectory:
    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_fleet.json"
        append_bench_entry(path, {"n": 1})
        append_bench_entry(path, {"n": 2})
        assert json.loads(path.read_text()) == [{"n": 1}, {"n": 2}]

    def test_append_recovers_from_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_fleet.json"
        path.write_text("not json{")
        append_bench_entry(path, {"n": 1})
        assert json.loads(path.read_text()) == [{"n": 1}]
