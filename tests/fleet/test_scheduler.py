"""Scheduler semantics: packing policies, determinism, rebalancing, rollout.

The determinism contract under test: placements and migration order are
functions of the spec *content* (label-keyed streams, ordinal tie-breaks),
never of host-table dict ordering or of which other hosts exist.
"""

import pytest

from repro.exp.spec import canonical_json
from repro.fleet.scheduler import FleetScheduler, SchedulerError, group_capacities
from repro.fleet.spec import FleetSpec

from tests.fleet.conftest import fleet_doc


def scheduled(doc):
    spec = FleetSpec.from_dict(doc)
    scheduler = FleetScheduler(spec, group_capacities(spec))
    scheduler.place()
    return scheduler


def capacity_doc(**overrides):
    """A doc with explicit capacities: no profiling, exact arithmetic."""
    doc = fleet_doc(
        hosts={
            "web": {
                "count": 3,
                "device": "ssd_new",
                "device_scale": 0.05,
                "capacity_iops": 1000,
            },
        },
        workloads=[],
    )
    doc.update(overrides)
    return doc


def workload(name, count, demand, weight=100):
    return {
        "name": name,
        "count": count,
        "cgroup": f"workload.slice/{name}",
        "weight": weight,
        "type": "saturate",
        "demand_iops": demand,
    }


class TestCapacities:
    def test_explicit_override_wins(self):
        spec = FleetSpec.from_dict(capacity_doc())
        assert group_capacities(spec) == {"web": 1000.0}

    def test_rated_uses_spec_peak(self):
        spec = FleetSpec.from_dict(fleet_doc(capacity="rated"))
        device = spec.hosts[0]
        from repro.fleet.spec import device_spec_for

        peak = device_spec_for(device.device, device.device_scale).peak_rand_read_iops
        assert group_capacities(spec)["web"] == pytest.approx(peak)

    def test_profiled_is_deterministic(self):
        spec = FleetSpec.from_dict(fleet_doc(capacity="profiled"))
        first = group_capacities(spec, read_duration=0.02, write_duration=0.02)
        second = group_capacities(spec, read_duration=0.02, write_duration=0.02)
        assert first == second
        assert first["web"] > 0

    def test_missing_group_capacity_raises(self):
        spec = FleetSpec.from_dict(capacity_doc())
        with pytest.raises(SchedulerError, match="no capacity"):
            FleetScheduler(spec, {})


class TestPlacementPolicies:
    def test_first_fit_packs_low_ordinals(self):
        sched = scheduled(capacity_doc(workloads=[workload("a", 4, 300)]))
        loads = [host.load_iops for host in sched.hosts]
        assert loads == [900.0, 300.0, 0.0]

    def test_best_fit_packs_tightest(self):
        doc = capacity_doc(
            policy="best_fit",
            workloads=[workload("big", 1, 700), workload("small", 2, 300)],
        )
        sched = scheduled(doc)
        # big -> web/0 (700); small#0 -> web/0 has 300 headroom = tightest
        # fit; small#1 no longer fits web/0, ties break by ordinal -> web/1.
        loads = [host.load_iops for host in sched.hosts]
        assert loads == [1000.0, 300.0, 0.0]

    def test_spread_is_deterministic_and_fits(self):
        doc = capacity_doc(policy="spread", workloads=[workload("a", 5, 200)])
        first = scheduled(doc).plan()
        second = scheduled(doc).plan()
        assert canonical_json(first) == canonical_json(second)
        for entry in first["hosts"].values():
            assert entry["load_iops"] <= entry["capacity_iops"]

    def test_oversubscription_flagged_not_fatal(self):
        doc = capacity_doc(workloads=[workload("huge", 1, 2500)])
        sched = scheduled(doc)
        placed = [h for h in sched.hosts if h.placements]
        assert len(placed) == 1
        assert placed[0].oversubscribed
        assert sched.plan()["hosts"][placed[0].id]["oversubscribed"]

    def test_single_instance_keeps_bare_cgroup(self):
        sched = scheduled(capacity_doc(workloads=[workload("solo", 1, 100)]))
        cgroups = [p.cgroup for h in sched.hosts for p in h.placements]
        assert cgroups == ["workload.slice/solo"]

    def test_multi_instance_cgroups_suffixed(self):
        sched = scheduled(capacity_doc(workloads=[workload("fe", 3, 100)]))
        cgroups = sorted(p.cgroup for h in sched.hosts for p in h.placements)
        assert cgroups == [f"workload.slice/fe-{i}" for i in range(3)]


class TestDeterminism:
    def test_plan_invariant_under_host_table_order(self):
        groups = {
            "web": {"count": 2, "device": "ssd_new", "device_scale": 0.05,
                    "capacity_iops": 1000},
            "db": {"count": 2, "device": "ssd_old", "device_scale": 0.05,
                   "capacity_iops": 800},
        }
        workloads = [workload("a", 3, 400), workload("b", 2, 250)]
        forward = scheduled(
            fleet_doc(hosts=dict(groups), workloads=workloads)
        ).plan()
        backward = scheduled(
            fleet_doc(
                hosts={k: groups[k] for k in reversed(list(groups))},
                workloads=workloads,
            )
        ).plan()
        assert canonical_json(forward) == canonical_json(backward)

    def test_place_is_idempotent(self):
        sched = scheduled(capacity_doc(workloads=[workload("a", 2, 100)]))
        before = canonical_json(sched.plan())
        sched.place()  # second call must not double-place
        assert canonical_json(sched.plan()) == before

    def test_migration_order_stable_under_fleet_growth(self):
        base = scheduled(capacity_doc())
        grown_doc = capacity_doc()
        grown_doc["hosts"]["db"] = {
            "count": 3, "device": "ssd_old", "device_scale": 0.05,
            "capacity_iops": 500,
        }
        grown = scheduled(grown_doc)
        base_order = base.migration_order()
        grown_order = [
            h for h in grown.migration_order() if h.startswith("web/")
        ]
        # Each web host's rank comes from its own labeled stream, so adding
        # the db group cannot reorder the web hosts relative to each other.
        assert grown_order == base_order


class TestStagedRollout:
    def test_fraction_extremes(self):
        sched = scheduled(capacity_doc())
        all_old = sched.staged_controllers(0.0, "iolatency", "iocost")
        assert set(all_old.values()) == {"iolatency"}
        all_new = sched.staged_controllers(1.0, "iolatency", "iocost")
        assert set(all_new.values()) == {"iocost"}

    def test_fraction_rounds_half_up(self):
        sched = scheduled(capacity_doc())  # 3 hosts
        assignment = sched.staged_controllers(0.5, "old", "new")
        assert sum(1 for c in assignment.values() if c == "new") == 2

    def test_rollout_is_cumulative(self):
        sched = scheduled(capacity_doc())
        early = sched.staged_controllers(1 / 3, "old", "new")
        late = sched.staged_controllers(2 / 3, "old", "new")
        migrated_early = {h for h, c in early.items() if c == "new"}
        migrated_late = {h for h, c in late.items() if c == "new"}
        assert migrated_early <= migrated_late


class TestRebalancing:
    def test_consolidate_drains_low_util_host(self):
        doc = capacity_doc(
            hosts={"web": {"count": 2, "device": "ssd_new",
                           "device_scale": 0.05, "capacity_iops": 1000}},
            workloads=[workload("main", 1, 950), workload("tiny", 2, 100)],
        )
        sched = scheduled(doc)
        # first_fit: main fills web/0; the tinies spill to web/1 (util 0.2).
        assert [h.load_iops for h in sched.hosts] == [950.0, 200.0]
        moves = sched.consolidate(low_util=0.4, target_util=1.2)
        assert len(moves) == 2
        assert all(m.reason == "consolidate" for m in moves)
        assert [h.load_iops for h in sched.hosts] == [1150.0, 0.0]
        assert len(sched.plan()["migrations"]) == 2

    def test_consolidate_rolls_back_partial_drains(self):
        doc = capacity_doc(
            hosts={"web": {"count": 2, "device": "ssd_new",
                           "device_scale": 0.05, "capacity_iops": 1000}},
            workloads=[workload("main", 1, 950), workload("tiny", 1, 100),
                       workload("mid", 1, 300)],
        )
        sched = scheduled(doc)
        assert [h.load_iops for h in sched.hosts] == [950.0, 400.0]
        # tiny would fit under 1.06 target, but mid would not: all-or-nothing
        # means web/1 must keep both placements.
        moves = sched.consolidate(low_util=0.5, target_util=1.06)
        assert moves == []
        assert [h.load_iops for h in sched.hosts] == [950.0, 400.0]

    def test_balance_narrows_spread(self):
        doc = capacity_doc(
            hosts={"web": {"count": 2, "device": "ssd_new",
                           "device_scale": 0.05, "capacity_iops": 1000}},
            workloads=[workload("u", 4, 200)],
        )
        sched = scheduled(doc)
        assert [h.load_iops for h in sched.hosts] == [800.0, 0.0]
        moves = sched.balance(tolerance=0.1)
        assert len(moves) == 2
        assert all(m.reason == "balance" for m in moves)
        assert [h.load_iops for h in sched.hosts] == [400.0, 400.0]
