"""The staged-migration policy: the Figures 18/19 curve, in miniature.

ISSUE acceptance: the failure rate must fall as the IOCost fraction
ramps.  The full-size region reproduction lives in
``benchmarks/test_fig18_package_fetch.py`` / ``test_fig19_container_cleanup.py``
(now driven through this same policy); this tier-1 version uses a small
cleanup task and few samples so it stays cheap.
"""

import pytest

from repro.exp.spec import canonical_json
from repro.fleet.runner import run_staged_migration
from repro.fleet.spec import FleetSpec

from tests.fleet.conftest import FLEETDEV

MIGRATION_DOC = {
    "name": "mini-migration",
    "seed": 9,
    "capacity": "rated",
    "hosts": {
        "web": {"count": 6, "device": dict(FLEETDEV)},
    },
    "workloads": [],
    "migration": {
        "schedule": [0.0, 0.5, 1.0],
        "samples": 2,
        "tasks_per_host_week": 10,
        "settle": 0.3,
        "task": {
            "name": "cleanup_small",
            "cgroup": "hostcritical.slice",
            "small_ios": 400,
            "op": "write",
            "deadline": 1.5,
        },
    },
}


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    spec = FleetSpec.from_dict(MIGRATION_DOC)
    store = tmp_path_factory.mktemp("migration")
    return spec, store, run_staged_migration(spec, store, workers=4)


class TestFailureCurve:
    def test_failures_fall_as_iocost_ramps(self, report):
        _, _, result = report
        weeks = result.weeks
        assert weeks[0].failures > 0  # IOLatency starves the cleanup task
        assert weeks[-1].failures < weeks[0].failures / 5
        rates = [week.failure_rate for week in weeks]
        # Monotone-ish decline, same slack as the paper-figure benchmarks.
        assert all(b <= a * 1.25 for a, b in zip(rates, rates[1:]))

    def test_rollout_tracks_schedule(self, report):
        _, _, result = report
        assert [w.migrated_hosts for w in result.weeks] == [0, 3, 6]
        assert [w.attempts for w in result.weeks] == [60, 60, 60]

    def test_iocost_bounds_task_durations(self, report):
        _, _, result = report
        old = result.durations["web:iolatency"]
        new = result.durations["web:iocost"]
        assert len(old) == len(new) == 2
        # Every IOCost sample beats the deadline; IOLatency lets at least
        # one sample blow through it (that is the whole Figure 19 story).
        assert all(d <= result.deadline for d in new)
        assert any(d > result.deadline for d in old)


class TestMigrationDeterminism:
    def test_rerun_from_cache_is_identical(self, report):
        spec, store, result = report
        again = run_staged_migration(spec, store, workers=1)
        assert again.sweep.hit_rate == 1.0
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())

    def test_report_document_shape(self, report):
        _, _, result = report
        doc = result.to_dict()
        assert doc["schema"] == "repro.fleet.migration/1"
        assert doc["task"] == "cleanup_small"
        assert doc["from_controller"] == "iolatency"
        assert doc["to_controller"] == "iocost"
        assert len(doc["weeks"]) == 3
        assert doc["weeks"][0]["failure_rate"] == pytest.approx(
            doc["weeks"][0]["failures"] / doc["weeks"][0]["attempts"]
        )
