"""Shared fixtures for the fleet tests: small, fast cluster documents."""

from typing import Any, Dict

import pytest

#: The Figures 18/19 fleet device as an inline spec table (fast: high
#: parallelism, flat 100us service times).  Matches benchmarks/test_fig18.
FLEETDEV: Dict[str, Any] = {
    "parallelism": 4,
    "read_bw": 500e6,
    "write_bw": 500e6,
    "srv_seq_read": 100e-6,
    "srv_rand_read": 100e-6,
    "srv_seq_write": 100e-6,
    "srv_rand_write": 100e-6,
    "sigma": 0.1,
    "nr_slots": 64,
}


def fleet_doc(**overrides: Any) -> Dict[str, Any]:
    """A small, valid fleet document; keyword args override top-level keys."""
    doc: Dict[str, Any] = {
        "name": "test-fleet",
        "seed": 5,
        "policy": "first_fit",
        "capacity": "rated",
        "duration": 0.05,
        "hosts": {
            "web": {"count": 4, "device": "ssd_new", "device_scale": 0.05},
        },
        "workloads": [
            {
                "name": "fe",
                "count": 6,
                "cgroup": "workload.slice/fe",
                "weight": 200,
                "type": "paced",
                "rate": 300,
            },
        ],
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"
