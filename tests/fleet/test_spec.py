"""Fleet spec loading, validation, round-tripping, and content hashing."""

import json

import pytest

from repro.block.device import DeviceSpec
from repro.fleet.spec import (
    FleetSpec,
    FleetSpecError,
    HostGroup,
    MigrationPlan,
    WorkloadTemplate,
    device_spec_for,
    load_fleet_spec,
    task_from_config,
)
from repro.workloads.fleet import TASKS

from tests.fleet.conftest import FLEETDEV, fleet_doc


class TestLoading:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            'name = "toml-fleet"\n'
            "seed = 3\n"
            '[hosts.web]\n'
            "count = 2\n"
            'device = "ssd_new"\n'
            "device_scale = 0.05\n"
            "[[workloads]]\n"
            'name = "fe"\n'
            "count = 2\n"
            'cgroup = "workload.slice/fe"\n'
            'type = "paced"\n'
            "rate = 100\n"
        )
        spec = load_fleet_spec(path)
        assert spec.name == "toml-fleet"
        assert spec.seed == 3
        assert spec.host_count == 2
        assert spec.workloads[0].demand() == 100.0

    def test_load_json(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(fleet_doc()))
        spec = load_fleet_spec(path)
        assert spec.host_count == 4

    def test_round_trip(self):
        doc = fleet_doc(
            migration={
                "schedule": [0.0, 0.5, 1.0],
                "task": "container_cleanup",
                "samples": 2,
            }
        )
        spec = FleetSpec.from_dict(doc)
        again = FleetSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fleet_hash == spec.fleet_hash


class TestContentHash:
    def test_name_excluded(self):
        a = FleetSpec.from_dict(fleet_doc(name="alpha"))
        b = FleetSpec.from_dict(fleet_doc(name="beta"))
        assert a.fleet_hash == b.fleet_hash

    def test_seed_changes_hash(self):
        a = FleetSpec.from_dict(fleet_doc(seed=1))
        b = FleetSpec.from_dict(fleet_doc(seed=2))
        assert a.fleet_hash != b.fleet_hash

    def test_host_table_order_irrelevant(self):
        groups = {
            "web": {"count": 2, "device": "ssd_new", "device_scale": 0.05},
            "db": {"count": 3, "device": "ssd_old", "device_scale": 0.05},
        }
        forward = FleetSpec.from_dict(fleet_doc(hosts=dict(groups)))
        reversed_doc = fleet_doc(
            hosts={k: groups[k] for k in reversed(list(groups))}
        )
        backward = FleetSpec.from_dict(reversed_doc)
        assert forward == backward
        # Groups come out sorted by name regardless of insertion order.
        assert [g.name for g in forward.hosts] == ["db", "web"]


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(FleetSpecError, match="unknown fleet spec keys"):
            FleetSpec.from_dict(fleet_doc(frobnicate=1))

    def test_unknown_host_group_key(self):
        doc = fleet_doc()
        doc["hosts"]["web"]["typo"] = True
        with pytest.raises(FleetSpecError, match="unknown host group"):
            FleetSpec.from_dict(doc)

    def test_missing_hosts(self):
        doc = fleet_doc()
        del doc["hosts"]
        with pytest.raises(FleetSpecError, match="hosts"):
            FleetSpec.from_dict(doc)

    def test_bad_policy(self):
        with pytest.raises(FleetSpecError, match="policy"):
            FleetSpec.from_dict(fleet_doc(policy="worst_fit"))

    def test_bad_capacity_mode(self):
        with pytest.raises(FleetSpecError, match="capacity"):
            FleetSpec.from_dict(fleet_doc(capacity="vibes"))

    def test_duplicate_workload_names(self):
        wl = fleet_doc()["workloads"][0]
        with pytest.raises(FleetSpecError, match="duplicate workload"):
            FleetSpec.from_dict(fleet_doc(workloads=[wl, dict(wl)]))

    def test_workload_needs_positive_demand(self):
        with pytest.raises(FleetSpecError, match="demand_iops"):
            WorkloadTemplate(name="x", count=1, cgroup="w", type="saturate")

    def test_workload_unknown_type(self):
        with pytest.raises(FleetSpecError, match="unknown type"):
            WorkloadTemplate(
                name="x", count=1, cgroup="w", type="mystery", demand_iops=1
            )

    def test_host_group_count(self):
        with pytest.raises(FleetSpecError, match="count"):
            HostGroup(name="web", count=0, device="ssd_new")

    def test_host_group_bad_device(self):
        with pytest.raises(FleetSpecError):
            HostGroup(name="web", count=1, device="floppy_drive_9000")


class TestDeviceResolution:
    def test_catalogue_name(self):
        spec = device_spec_for("ssd_new")
        assert isinstance(spec, DeviceSpec)

    def test_scale_applied(self):
        full = device_spec_for("ssd_new")
        scaled = device_spec_for("ssd_new", 0.5)
        assert scaled.read_bw == pytest.approx(full.read_bw * 0.5)

    def test_inline_table(self):
        spec = device_spec_for(FLEETDEV)
        assert spec.parallelism == 4
        assert spec.name == "inline"  # auto-filled default

    def test_inline_table_bad_field(self):
        with pytest.raises(FleetSpecError, match="inline device"):
            device_spec_for({**FLEETDEV, "warp_factor": 9})

    def test_inline_device_in_host_group(self):
        doc = fleet_doc()
        doc["hosts"]["web"] = {"count": 2, "device": dict(FLEETDEV)}
        spec = FleetSpec.from_dict(doc)
        assert spec.fleet_hash  # content-addressable with an inline table


class TestTaskConfig:
    def test_catalogue_name(self):
        task = task_from_config("container_cleanup")
        assert task is TASKS["container_cleanup"]

    def test_unknown_name(self):
        with pytest.raises(FleetSpecError, match="unknown system task"):
            task_from_config("defrag_the_cloud")

    def test_inline_table(self):
        task = task_from_config(
            {
                "name": "tiny",
                "cgroup": "system.slice",
                "small_ios": 10,
                "op": "read",
                "deadline": 2.0,
            }
        )
        assert task.name == "tiny"
        assert task.deadline == 2.0
        assert task.small_io_op.value == "read"

    def test_inline_table_bad_op(self):
        with pytest.raises(FleetSpecError, match="read|write"):
            task_from_config({"name": "t", "op": "scribble", "deadline": 1.0})

    def test_inline_table_needs_deadline(self):
        with pytest.raises(FleetSpecError, match="deadline"):
            task_from_config({"name": "t"})


class TestMigrationPlan:
    def test_defaults(self):
        plan = MigrationPlan(schedule=(0.0, 1.0))
        assert plan.from_controller == "iolatency"
        assert plan.to_controller == "iocost"
        assert plan.system_task().name == "container_cleanup"

    def test_empty_schedule(self):
        with pytest.raises(FleetSpecError, match="schedule"):
            MigrationPlan(schedule=())

    def test_fraction_out_of_range(self):
        with pytest.raises(FleetSpecError, match=r"\[0, 1\]"):
            MigrationPlan(schedule=(0.0, 1.5))

    def test_unknown_key(self):
        with pytest.raises(FleetSpecError, match="unknown migration"):
            MigrationPlan.from_dict({"schedule": [0.0], "surprise": 1})

    def test_bad_task_rejected_early(self):
        with pytest.raises(FleetSpecError, match="unknown system task"):
            MigrationPlan(schedule=(0.0,), task="nope")
