"""The fleet experiment kinds: host cells, duration cells, the nested kind."""

import pytest

from repro.exp.experiments import ExperimentError, resolve
from repro.exp.spec import canonical_json
from repro.fleet.experiments import (
    HIST_RESOLUTION,
    run_fleet_host,
    run_fleet_task_durations,
)
from repro.fleet.runner import run_fleet_sweep
from repro.fleet.spec import FleetSpec

from tests.fleet.conftest import FLEETDEV, fleet_doc


def host_cell(**overrides):
    cell = {
        "id": "web/0",
        "group": "web",
        "device": "ssd_new",
        "device_scale": 0.05,
        "controller": "iocost",
        "duration": 0.05,
        "percentiles": [50, 99],
        "cgroups": {"workload.slice/fe": 200},
        "workloads": [
            {"cgroup": "workload.slice/fe", "type": "paced", "rate": 300},
        ],
    }
    cell.update(overrides)
    return cell


class TestHostKind:
    def test_result_shape(self):
        result = run_fleet_host({"host": host_cell()}, seed=11)
        assert result["host"] == "web/0"
        assert result["controller"] == "iocost"
        cell = result["cgroups"]["workload.slice/fe"]
        assert cell["iops"] > 0
        assert cell["read_p99"] is None or cell["read_p99"] > 0
        hist = result["latency_hist"]["workload.slice/fe"]
        assert hist["resolution"] == HIST_RESOLUTION
        assert result["events_processed"] > 0
        assert "" in result["iostat"]  # the recursive root

    def test_deterministic_per_seed(self):
        first = run_fleet_host({"host": host_cell()}, seed=11)
        second = run_fleet_host({"host": host_cell()}, seed=11)
        other = run_fleet_host({"host": host_cell()}, seed=12)
        assert canonical_json(first) == canonical_json(second)
        assert canonical_json(first) != canonical_json(other)

    def test_idle_host_is_cheap_and_explicit(self):
        result = run_fleet_host(
            {"host": host_cell(cgroups={}, workloads=[])}, seed=1
        )
        assert result["cgroups"] == {}
        assert result["events_processed"] == 0

    def test_unknown_qos_field_rejected(self):
        with pytest.raises(ExperimentError, match="qos"):
            run_fleet_host(
                {"host": host_cell(qos={"warp_speed": 9})}, seed=1
            )

    def test_params_must_be_mapping(self):
        with pytest.raises(ExperimentError, match="mapping"):
            run_fleet_host({"host": 42}, seed=1)


class TestDurationKind:
    def test_sample_shape(self):
        result = run_fleet_task_durations(
            {
                "cell": {
                    "id": "web:iocost:0",
                    "group": "web",
                    "device": dict(FLEETDEV),
                    "controller": "iocost",
                    "task": {
                        "name": "cleanup_small",
                        "cgroup": "hostcritical.slice",
                        "small_ios": 200,
                        "op": "write",
                        "deadline": 1.0,
                    },
                    "sample": 0,
                    "settle": 0.2,
                }
            },
            seed=4,
        )
        assert result["group"] == "web"
        assert result["controller"] == "iocost"
        assert result["task"] == "cleanup_small"
        assert 8 <= result["workload_depth"] < 64
        assert 0 < result["duration_sec"] <= result["deadline"]


class TestNestedFleetKind:
    def test_matches_pooled_rollup_bytes(self, tmp_path):
        doc = fleet_doc(name="parity", seed=21)
        inline = resolve("fleet")({"fleet": doc}, seed=21)
        pooled = run_fleet_sweep(FleetSpec.from_dict(doc), tmp_path, workers=2)
        assert inline["fleet_hash"] == pooled.fleet_hash
        assert canonical_json(inline["plan"]) == canonical_json(pooled.plan)
        assert canonical_json(inline["rollup"]) == canonical_json(pooled.rollup)

    def test_needs_fleet_document(self):
        with pytest.raises(ExperimentError, match="fleet"):
            resolve("fleet")({}, seed=0)
