"""Fleet rollup math: p99-of-p99s vs pooled percentiles, histogram merging.

The two aggregates answer different questions ("how bad is a bad host" vs
"how bad is a bad IO") and diverge exactly when slow hosts are a minority
— which is the scenario these tests construct explicitly.
"""

import numpy as np
import pytest

from repro.fleet.rollup import ROLLUP_SCHEMA, fleet_rollup, merge_histograms
from repro.obs.metrics import Histogram, exact_percentile

RESOLUTION = 0.02


def hist_payload(values):
    hist = Histogram(resolution=RESOLUTION)
    hist.record_many(values)
    return hist.to_dict()


def make_plan(host_values, workload="w", cgroup="workload.slice/w"):
    return {
        "fleet": "rollup-test",
        "fleet_hash": "feedc0de00000000",
        "policy": "first_fit",
        "capacity": "rated",
        "hosts": {
            host_id: {
                "group": "g",
                "capacity_iops": 1000.0,
                "load_iops": 100.0,
                "utilization": 0.1,
                "oversubscribed": False,
                "workloads": [
                    {"workload": workload, "instance": i, "cgroup": cgroup,
                     "weight": 100, "demand_iops": 100.0}
                ],
            }
            for i, host_id in enumerate(host_values)
        },
        "migrations": [],
    }


def make_result(values, cgroup="workload.slice/w", iostat=None):
    return {
        "cgroups": {
            cgroup: {
                "iops": float(len(values)),
                "read_p99": float(exact_percentile(list(values), 99)),
            }
        },
        "iostat": iostat or {},
        "latency_hist": {cgroup: hist_payload(values)},
        "vrate_mean": None,
    }


def assert_hists_equal(left, right):
    """Bucket-exact equality; ``sum`` only up to float addition order."""
    assert left.keys() == right.keys()
    for key in left:
        if key == "sum":
            assert left[key] == pytest.approx(right[key])
        else:
            assert left[key] == right[key], key


class TestHistogramMerging:
    def test_merge_is_associative(self):
        rng = np.random.default_rng(7)
        parts = [rng.lognormal(-6, 1, 200) for _ in range(3)]

        def merged(order):
            out = None
            for index in order:
                hist = Histogram(resolution=RESOLUTION)
                hist.record_many(parts[index])
                out = hist if out is None else out.merge(hist)
            return out.to_dict()

        left = merged([0, 1, 2])   # (a + b) + c
        right = merged([1, 2, 0])  # (b + c) + a
        assert_hists_equal(left, right)
        assert_hists_equal(left, merged([2, 0, 1]))

    def test_merge_equals_pooled_recording(self):
        rng = np.random.default_rng(8)
        a, b = rng.lognormal(-6, 1, 300), rng.lognormal(-5, 1, 300)
        pooled = Histogram(resolution=RESOLUTION)
        pooled.record_many(np.concatenate([a, b]))
        merged = merge_histograms([hist_payload(a), hist_payload(b)])
        assert_hists_equal(merged.to_dict(), pooled.to_dict())

    def test_merge_histograms_empty(self):
        assert merge_histograms([]) is None

    def test_resolution_mismatch_rejected(self):
        coarse = Histogram(resolution=0.1)
        fine = Histogram(resolution=RESOLUTION)
        with pytest.raises(ValueError, match="resolution"):
            coarse.merge(fine)


class TestPercentileOfPercentiles:
    def test_minority_slow_host_splits_the_aggregates(self):
        # Three healthy hosts (100 IOs at ~1ms), one sick host with only
        # two IOs at 10ms.  Its host-p99 is 10ms, so the p99-of-p99s sees
        # it; pooled over 302 samples, rank 99% still lands on 1ms.
        values = {
            "g/0": [1e-3] * 100,
            "g/1": [1e-3] * 100,
            "g/2": [1e-3] * 100,
            "g/3": [10e-3] * 2,
        }
        plan = make_plan(values)
        results = {h: make_result(v) for h, v in values.items()}
        rollup = fleet_rollup(plan, results, percentiles=(99,))
        latency = rollup["workloads"]["w"]["read_latency"]["p99"]

        assert latency["of_host_percentiles"] == pytest.approx(10e-3, rel=0.05)
        assert latency["host_max"] == pytest.approx(10e-3, rel=0.05)
        assert latency["pooled"] == pytest.approx(1e-3, rel=2 * RESOLUTION)
        assert latency["pooled"] < latency["of_host_percentiles"]

    def test_pooled_matches_exact_percentile_within_bucket(self):
        rng = np.random.default_rng(11)
        values = {f"g/{i}": rng.lognormal(-6, 0.8, 250) for i in range(4)}
        plan = make_plan(values)
        results = {h: make_result(list(v)) for h, v in values.items()}
        rollup = fleet_rollup(plan, results, percentiles=(50, 99))
        everything = np.concatenate(list(values.values()))
        for pct in (50, 99):
            pooled = rollup["workloads"]["w"]["read_latency"][f"p{pct}"]["pooled"]
            exact = exact_percentile(list(everything), pct)
            assert pooled == pytest.approx(exact, rel=3 * RESOLUTION)

    def test_sample_counts_survive_merging(self):
        values = {"g/0": [1e-3] * 40, "g/1": [2e-3] * 60}
        rollup = fleet_rollup(
            make_plan(values),
            {h: make_result(v) for h, v in values.items()},
            percentiles=(99,),
        )
        assert rollup["workloads"]["w"]["samples"] == 100
        assert rollup["workloads"]["w"]["placements_reporting"] == 2


class TestRollupDocument:
    def test_schema_and_missing_hosts(self):
        values = {"g/0": [1e-3] * 10, "g/1": [1e-3] * 10}
        plan = make_plan(values)
        rollup = fleet_rollup(plan, {"g/0": make_result(values["g/0"])})
        assert rollup["schema"] == ROLLUP_SCHEMA
        assert rollup["hosts"]["total"] == 2
        assert rollup["hosts"]["reporting"] == 1
        assert rollup["hosts"]["missing"] == ["g/1"]

    def test_iostat_sums_counters_but_not_cost_gauges(self):
        values = {"g/0": [1e-3] * 4, "g/1": [1e-3] * 4}
        iostat = {
            "": {"rbytes": 100.0, "rios": 10.0, "cost.vrate": 87.5},
        }
        results = {
            h: make_result(v, iostat={k: dict(e) for k, e in iostat.items()})
            for h, v in values.items()
        }
        rollup = fleet_rollup(make_plan(values), results)
        totals = rollup["iostat"][""]
        assert totals["rbytes"] == 200.0
        assert totals["rios"] == 20.0
        assert "cost.vrate" not in totals  # a gauge: summing is nonsense

    def test_vrate_stats(self):
        values = {"g/0": [1e-3] * 4, "g/1": [1e-3] * 4}
        results = {h: make_result(v) for h, v in values.items()}
        results["g/0"]["vrate_mean"] = 80.0
        results["g/1"]["vrate_mean"] = 120.0
        rollup = fleet_rollup(make_plan(values), results)
        assert rollup["vrate"] == {
            "hosts": 2.0, "mean": 100.0, "min": 80.0, "max": 120.0,
        }
