"""Per-run wall-clock timeouts: worker kill, structured status, cache misses.

These tests use a real clock by necessity (deadlines are wall time); they
keep the limits small so the suite stays fast.
"""

import time

import pytest

from repro.exp.cache import MISS_TIMEOUT, ResultCache
from repro.exp.grid import expand
from repro.exp.runner import RunnerError, run_sweep
from repro.exp.spec import ExperimentSpec
from repro.exp.store import META_FILE, ArtifactStore

QUICK = "tests.exp.helpers.quick"
HANG = "tests.exp.helpers.hang_forever"


class TestValidation:
    def test_nonpositive_timeout_rejected(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK)
        with pytest.raises(RunnerError, match="timeout_sec"):
            run_sweep(spec, tmp_path, clock=time.perf_counter, timeout_sec=0.0)  # simlint: disable=no-wallclock

    def test_timeout_requires_real_clock(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK)
        with pytest.raises(RunnerError, match="real clock"):
            run_sweep(spec, tmp_path, timeout_sec=1.0)


class TestTimeoutPath:
    def test_hung_run_killed_and_recorded(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=HANG)
        store = ArtifactStore(tmp_path)
        report = run_sweep(
            spec, store, workers=1, clock=time.perf_counter, timeout_sec=0.5  # simlint: disable=no-wallclock
        )
        (outcome,) = report.outcomes
        assert outcome.status == "timeout" and not outcome.ok
        assert outcome.error["type"] == "TimeoutError"
        assert outcome.result is None
        assert report.timeouts == 1 and report.failures == 1
        assert report.to_bench_dict()["totals"]["timeouts"] == 1

    def test_timeout_lands_in_meta_json(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=HANG)
        store = ArtifactStore(tmp_path)
        run_sweep(spec, store, workers=1, clock=time.perf_counter, timeout_sec=0.5)  # simlint: disable=no-wallclock
        (run,) = expand(spec)
        meta = store.try_read_json(run.run_hash, META_FILE)
        assert meta["status"] == "timeout"
        assert meta["error"]["type"] == "TimeoutError"

    def test_cache_reports_timed_out_previously(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=HANG)
        store = ArtifactStore(tmp_path)
        run_sweep(spec, store, workers=1, clock=time.perf_counter, timeout_sec=0.5)  # simlint: disable=no-wallclock
        cache = ResultCache(store)
        (run,) = expand(spec)
        decision = cache.lookup(run)
        assert not decision.hit and decision.reason == MISS_TIMEOUT

    def test_quick_runs_unaffected_by_timeout_manager(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK, grid={"value": (3, 1, 2)})
        plain = run_sweep(spec, ArtifactStore(tmp_path / "a"), workers=1)
        timed = run_sweep(
            spec,
            ArtifactStore(tmp_path / "b"),
            workers=2,
            clock=time.perf_counter,  # simlint: disable=no-wallclock
            timeout_sec=30.0,
        )
        assert [o.status for o in timed.outcomes] == ["ok", "ok", "ok"]
        # Sweep order and results identical to the pool path.
        assert [o.result for o in timed.outcomes] == [
            o.result for o in plain.outcomes
        ]

    def test_mixed_sweep_survives_a_hung_cell(self, tmp_path):
        # zip a hung cell between two quick ones via a dotted-kind axis.
        spec = ExperimentSpec(
            name="s",
            kind=QUICK,
            grid={"value": (1,)},
        )
        hang_spec = ExperimentSpec(name="h", kind=HANG)
        store = ArtifactStore(tmp_path)
        ok = run_sweep(
            spec, store, workers=2, clock=time.perf_counter, timeout_sec=5.0  # simlint: disable=no-wallclock
        )
        bad = run_sweep(
            hang_spec, store, workers=2, clock=time.perf_counter, timeout_sec=0.5  # simlint: disable=no-wallclock
        )
        assert ok.failures == 0 and bad.timeouts == 1
