"""The chaos experiment kind: isolation under device faults (docs/FAULTS.md).

The acceptance scenario is the issue's headline figure: a mid-run firmware
GC stall on the shared device, a latency-sensitive protected cgroup, and a
saturating best-effort neighbor.  iocost must hold the protected cgroup's
fault-phase read p99 within the QoS target while the best-effort cgroup
absorbs the degradation.
"""

import json

import pytest

from repro.exp.experiments import ExperimentError, run_chaos
from repro.exp.grid import expand
from repro.exp.runner import run_sweep
from repro.exp.spec import ExperimentSpec
from repro.exp.store import ArtifactStore

PROTECTED = "workload.slice/protected"
BESTEFFORT = "workload.slice/besteffort"

#: The acceptance scenario: GC stall at t=0.4s on a scaled-down ssd_new,
#: paced protected reader vs saturating best-effort neighbor, iocost QoS.
ACCEPTANCE = {
    "device": "ssd_new",
    "device_scale": 0.05,
    "controller": "iocost",
    "qos": {
        "read_lat_target": 5e-3,
        "read_pct": 95,
        "vrate_min": 0.25,
        "vrate_max": 2.0,
        "period": 0.05,
    },
    "cgroups": {PROTECTED: 500, BESTEFFORT: 100},
    "workloads": [
        {"cgroup": PROTECTED, "type": "paced", "rate": 300},
        {"cgroup": BESTEFFORT, "type": "saturate", "depth": 16},
    ],
    "duration": 1.2,
    "faults": [{"kind": "gc_stall", "start": 0.4, "duration": 0.02}],
    "protected": PROTECTED,
    "latency_target": 0.05,
    "settle": 0.08,
    "io_timeout": 0.25,
    "max_retries": 2,
}

#: A short error-burst scenario for the counter/determinism tests.
BURST = {
    "device": "ssd_new",
    "device_scale": 0.05,
    "controller": "iocost",
    "cgroups": {PROTECTED: 500, BESTEFFORT: 100},
    "workloads": [
        {"cgroup": PROTECTED, "type": "paced", "rate": 200},
        {"cgroup": BESTEFFORT, "type": "saturate", "depth": 8},
    ],
    "duration": 0.3,
    "faults": [
        {"kind": "error_burst", "start": 0.1, "duration": 0.05, "error_rate": 0.5}
    ],
    "settle": 0.02,
    "max_retries": 1,
}


class TestAcceptance:
    def test_iocost_holds_protected_p99_through_gc_stall(self):
        result = run_chaos(dict(ACCEPTANCE), seed=7)
        isolation = result["isolation"]
        assert isolation["protected"] == PROTECTED
        assert isolation["within_target"] is True
        assert isolation["fault_read_p99"] <= 0.05
        pre = result["phases"]["pre"]["cgroups"]
        fault = result["phases"]["fault"]["cgroups"]
        # The paced protected reader keeps its rate through the stall...
        assert fault[PROTECTED]["iops"] == pytest.approx(
            pre[PROTECTED]["iops"], rel=0.15
        )
        # ...while the best-effort neighbor absorbs the degradation.
        assert fault[BESTEFFORT]["iops"] < pre[BESTEFFORT]["iops"]
        # Phase envelope: [0, 0.4) pre, [0.4, 0.42 + settle) fault.
        assert result["phases"]["fault"]["start"] == pytest.approx(0.4)
        assert result["phases"]["fault"]["end"] == pytest.approx(0.5)
        assert result["phases"]["post"]["end"] == pytest.approx(1.2)

    def test_identical_seed_reproduces_exactly(self):
        first = run_chaos(dict(ACCEPTANCE), seed=7)
        second = run_chaos(dict(ACCEPTANCE), seed=7)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


class TestErrorAccounting:
    def test_error_burst_shows_up_in_totals(self):
        result = run_chaos(dict(BURST), seed=11)
        totals = result["totals"]
        assert totals["requeues"] > 0
        # iocost's graceful-degradation accounting: failed bios keep their
        # cost (never refunded), surfaced alongside the error counters.
        assert totals["failed_ios"] == totals["errors"]
        if totals["errors"]:
            assert totals["failed_cost"] > 0.0
        fault = result["phases"]["fault"]
        assert fault["requeues"] == totals["requeues"]

    def test_fault_at_time_zero_has_no_pre_phase(self):
        params = dict(BURST)
        params["faults"] = [
            {"kind": "error_burst", "start": 0.0, "duration": 0.05}
        ]
        result = run_chaos(params, seed=3)
        assert result["phases"]["pre"] is None
        assert result["phases"]["fault"]["start"] == 0.0


class TestValidation:
    def test_missing_faults_rejected(self):
        params = dict(BURST)
        del params["faults"]
        with pytest.raises(ExperimentError, match="faults"):
            run_chaos(params, seed=0)

    def test_unknown_protected_cgroup_rejected(self):
        params = dict(BURST)
        params["protected"] = "nope"
        with pytest.raises(ExperimentError, match="protected"):
            run_chaos(params, seed=0)

    def test_negative_settle_rejected(self):
        params = dict(BURST)
        params["settle"] = -0.1
        with pytest.raises(ExperimentError, match="settle"):
            run_chaos(params, seed=0)


class TestSweepDeterminism:
    def test_result_json_byte_identical_across_worker_counts(self, tmp_path):
        spec = ExperimentSpec(
            name="chaos-det",
            kind="chaos",
            base=dict(BURST),
            grid={"seed_offset": (0, 1), "max_retries": (1, 2)},
            seed=5,
        )
        store_a = ArtifactStore(tmp_path / "w1")
        store_b = ArtifactStore(tmp_path / "w4")
        report_a = run_sweep(spec, store_a, workers=1)
        report_b = run_sweep(spec, store_b, workers=4)
        assert report_a.failures == 0 and report_b.failures == 0
        for run in expand(spec):
            assert store_a.result_bytes(run.run_hash) == store_b.result_bytes(
                run.run_hash
            )
