"""Runner semantics: pool determinism, failures/retries, metrics, speedup."""

import json
import os

import pytest

from repro.exp.grid import expand
from repro.exp.runner import RunnerError, run_sweep, write_bench_json
from repro.exp.spec import ExperimentSpec
from repro.exp.store import ArtifactStore
from repro.obs.metrics import MetricRegistry

from tests.exp import helpers

QUICK = "tests.exp.helpers.quick"

#: A small but real simulated sweep: 2 devices x 2 controllers x 2 weights.
ACCEPTANCE_SPEC = ExperimentSpec(
    name="acceptance-2x2x2",
    kind="testbed",
    base={
        "device_scale": 0.05,
        "duration": 0.3,
        "cgroups": {"high": 200, "low": 100},
        "workloads": [
            {"cgroup": "high", "type": "saturate", "depth": 16},
            {"cgroup": "low", "type": "saturate", "depth": 16},
        ],
    },
    grid={
        "device": ("ssd_new", "ssd_old"),
        "controller": ("iocost", "bfq"),
        "cgroups.high": (200, 400),
    },
)


class TestRunnerBasics:
    def test_outcomes_in_expansion_order(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK, grid={"value": (3, 1, 2)})
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1)
        assert [o.run.axes["value"] for o in report.outcomes] == [3, 1, 2]
        assert [o.run.run_hash for o in report.outcomes] == [
            run.run_hash for run in expand(spec)
        ]

    def test_store_accepts_path(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK)
        report = run_sweep(spec, tmp_path, workers=1)
        assert report.runs_total == 1
        assert (tmp_path / "runs").is_dir()

    def test_results_use_derived_seed(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK, grid={"value": (1, 2)})
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1)
        for outcome in report.outcomes:
            assert outcome.result["seed"] == outcome.run.derived_seed

    def test_zero_clock_default(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK)
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1)
        assert report.elapsed_wall_sec == 0.0
        assert all(o.wall_sec == 0.0 for o in report.outcomes)
        assert report.speedup_vs_serial is None

    def test_bad_workers(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK)
        with pytest.raises(RunnerError):
            run_sweep(spec, ArtifactStore(tmp_path), workers=0)
        with pytest.raises(RunnerError):
            run_sweep(spec, ArtifactStore(tmp_path), retries=-1)

    def test_metrics_wiring(self, tmp_path):
        metrics = MetricRegistry()
        spec = ExperimentSpec(name="s", kind=QUICK, grid={"value": (1, 2)})
        store = ArtifactStore(tmp_path)
        run_sweep(spec, store, workers=1, metrics=metrics)
        run_sweep(spec, store, workers=1, metrics=metrics)
        snapshot = metrics.as_dict()
        assert snapshot["exp.runs_completed"] == 4
        assert snapshot["exp.cache_hits"] == 2
        assert snapshot["exp.failures"] == 0
        assert snapshot["exp.run_wall_sec"]["count"] == 2

    def test_bench_json(self, tmp_path):
        spec = ExperimentSpec(name="s", kind=QUICK, grid={"value": (1, 2)})
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1)
        path = write_bench_json(report, tmp_path / "BENCH_sweep.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.exp.sweep/1"
        assert payload["totals"]["runs"] == 2
        assert payload["totals"]["cache_hits"] == 0
        assert len(payload["runs"]) == 2


class TestFailures:
    def test_failures_do_not_abort_sweep(self, tmp_path):
        spec = ExperimentSpec(
            name="s", kind="tests.exp.helpers.always_fail",
            base={"tag": "t"}, grid={"value": (1, 2)},
        )
        store = ArtifactStore(tmp_path)
        report = run_sweep(spec, store, workers=1, retries=1)
        assert report.failures == 2
        for outcome in report.outcomes:
            assert outcome.status == "failed"
            assert outcome.attempts == 2  # one retry
            assert outcome.error == {"type": "RuntimeError", "message": "boom-t"}
            meta = store.read_json(outcome.run.run_hash, "meta.json")
            assert meta["status"] == "failed"
            assert meta["error"]["type"] == "RuntimeError"
            assert not store.has(outcome.run.run_hash, "result.json")

    def test_failed_runs_reattempted_next_sweep(self, tmp_path):
        spec = ExperimentSpec(name="s", kind="tests.exp.helpers.always_fail")
        store = ArtifactStore(tmp_path)
        run_sweep(spec, store, workers=1)
        report = run_sweep(spec, store, workers=1)
        assert report.cache_hits == 0
        assert report.outcomes[0].cache_reason == "failed-previously"

    def test_retry_recovers_transient_failure(self, tmp_path):
        helpers.CALLS.clear()
        spec = ExperimentSpec(
            name="s", kind="tests.exp.helpers.fail_once_then_ok",
            base={"tag": "transient"},
        )
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1, retries=1)
        outcome = report.outcomes[0]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.result["recovered"] is True

    def test_no_retries_records_first_failure(self, tmp_path):
        helpers.CALLS.clear()
        spec = ExperimentSpec(
            name="s", kind="tests.exp.helpers.fail_once_then_ok",
            base={"tag": "once"},
        )
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1, retries=0)
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1
        assert outcome.error["type"] == "ValueError"

    def test_unknown_kind_is_structured_failure(self, tmp_path):
        spec = ExperimentSpec(name="s", kind="no-such-kind")
        report = run_sweep(spec, ArtifactStore(tmp_path), workers=1)
        assert report.failures == 1
        assert report.outcomes[0].error["type"] == "ExperimentError"


class TestPoolDeterminism:
    def test_worker_pools_produce_byte_identical_results(self, tmp_path):
        """The acceptance determinism contract: 2-worker and 8-worker pools
        land byte-identical ``result.json`` for every cell of the sweep."""
        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        report_a = run_sweep(ACCEPTANCE_SPEC, store_a, workers=2)
        report_b = run_sweep(ACCEPTANCE_SPEC, store_b, workers=8)
        assert report_a.runs_total == report_b.runs_total == 8
        assert report_a.failures == report_b.failures == 0
        for outcome in report_a.outcomes:
            run_hash = outcome.run.run_hash
            assert store_a.result_bytes(run_hash) == store_b.result_bytes(run_hash)

    def test_second_invocation_full_cache_hit_identical_results(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = run_sweep(ACCEPTANCE_SPEC, store, workers=2)
        before = {
            o.run.run_hash: store.result_bytes(o.run.run_hash)
            for o in first.outcomes
        }
        second = run_sweep(ACCEPTANCE_SPEC, store, workers=2)
        assert second.hit_rate == 1.0
        assert second.executed == 0
        after = {
            o.run.run_hash: store.result_bytes(o.run.run_hash)
            for o in second.outcomes
        }
        assert before == after
        assert [o.result for o in second.outcomes] == [o.result for o in first.outcomes]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 cores",
)
def test_parallel_speedup_vs_serial(tmp_path):
    """A 2x2x2 sweep with --workers 4 is >= 2x faster than --workers 1."""
    import time

    clock = time.perf_counter  # wall-clock speedup under test - simlint: disable=no-wallclock
    serial_store = ArtifactStore(tmp_path / "serial")
    parallel_store = ArtifactStore(tmp_path / "parallel")
    start = clock()
    run_sweep(ACCEPTANCE_SPEC, serial_store, workers=1, clock=clock)
    serial_sec = clock() - start
    start = clock()
    run_sweep(ACCEPTANCE_SPEC, parallel_store, workers=4, clock=clock)
    parallel_sec = clock() - start
    assert parallel_sec * 2 <= serial_sec, (
        f"workers=4 took {parallel_sec:.2f}s vs workers=1 {serial_sec:.2f}s"
    )


class TestTraceCapture:
    def test_trace_jsonl_artifact(self, tmp_path):
        spec = ExperimentSpec(
            name="traced",
            kind="testbed",
            base={
                "device_scale": 0.05,
                "duration": 0.1,
                "cgroups": {"solo": 100},
                "workloads": [{"cgroup": "solo", "type": "saturate", "depth": 4}],
                "trace_events": ["bio_complete"],
            },
        )
        store = ArtifactStore(tmp_path)
        report = run_sweep(spec, store, workers=1)
        outcome = report.outcomes[0]
        assert outcome.ok
        # The reserved key never reaches result.json.
        result = store.read_json(outcome.run.run_hash, "result.json")
        assert "_trace_jsonl" not in result
        trace_path = store.path(outcome.run.run_hash, "trace.jsonl")
        lines = trace_path.read_text().splitlines()
        assert lines
        event = json.loads(lines[0])
        assert event["event"] == "bio_complete"

    def test_trace_spans_breakdown_in_result(self, tmp_path):
        spec = ExperimentSpec(
            name="spanned",
            kind="testbed",
            base={
                "device_scale": 0.05,
                "duration": 0.1,
                "cgroups": {"solo": 100},
                "workloads": [{"cgroup": "solo", "type": "saturate", "depth": 4}],
                "trace_spans": True,
            },
        )
        store = ArtifactStore(tmp_path)
        report = run_sweep(spec, store, workers=1)
        outcome = report.outcomes[0]
        assert outcome.ok
        result = store.read_json(outcome.run.run_hash, "result.json")
        spans = result["spans"]
        assert spans["completed"] > 0
        rollup = spans["breakdown"]
        assert rollup["count"] == spans["completed"]
        stage_total = sum(
            stage["total_usec"] for stage in rollup["stages"].values()
        )
        assert stage_total == rollup["end_to_end"]["total_usec"]
