"""Sweep expansion: ordering, overrides, hashing, per-run seeds."""

import pytest

from repro.exp.grid import RunSpec, expand, set_by_path
from repro.exp.spec import ExperimentSpec, SpecError


class TestSetByPath:
    def test_top_level(self):
        tree = {"a": 1}
        set_by_path(tree, "a", 2)
        assert tree == {"a": 2}

    def test_nested_creates_intermediates(self):
        tree = {}
        set_by_path(tree, "qos.read_lat_target", 0.005)
        assert tree == {"qos": {"read_lat_target": 0.005}}

    def test_list_index(self):
        tree = {"workloads": [{"depth": 8}, {"depth": 16}]}
        set_by_path(tree, "workloads.1.depth", 64)
        assert tree["workloads"][1]["depth"] == 64
        assert tree["workloads"][0]["depth"] == 8

    def test_bad_list_index(self):
        with pytest.raises(SpecError, match="out of range"):
            set_by_path({"w": [1]}, "w.3", 0)
        with pytest.raises(SpecError, match="not an index"):
            set_by_path({"w": [1]}, "w.x", 0)

    def test_scalar_traversal_rejected(self):
        with pytest.raises(SpecError, match="traverses"):
            set_by_path({"a": 5}, "a.b.c", 1)


class TestExpand:
    def test_no_axes_single_run(self):
        runs = expand(ExperimentSpec(name="s", base={"x": 1}))
        assert len(runs) == 1
        assert runs[0].params == {"x": 1}
        assert runs[0].axes == {}

    def test_grid_product_order(self):
        spec = ExperimentSpec(
            name="s", grid={"b": ("x", "y"), "a": (1, 2)}
        )
        runs = expand(spec)
        # Sorted axis names: 'a' outermost, values in given order.
        assert [run.axes for run in runs] == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_zip_lockstep(self):
        spec = ExperimentSpec(name="s", zip_axes={"x": (1, 2), "y": (3, 4)})
        runs = expand(spec)
        assert [run.axes for run in runs] == [{"x": 1, "y": 3}, {"x": 2, "y": 4}]

    def test_grid_times_zip(self):
        spec = ExperimentSpec(
            name="s", grid={"g": ("a", "b")}, zip_axes={"x": (1, 2), "y": (3, 4)}
        )
        runs = expand(spec)
        assert len(runs) == 4
        assert runs[0].axes == {"g": "a", "x": 1, "y": 3}
        assert runs[3].axes == {"g": "b", "x": 2, "y": 4}

    def test_overrides_applied_to_params(self):
        spec = ExperimentSpec(
            name="s",
            base={"qos": {"period": 0.05}, "device": "ssd_new"},
            grid={"qos.read_lat_target": (0.001, 0.002)},
        )
        runs = expand(spec)
        assert runs[0].params["qos"] == {"period": 0.05, "read_lat_target": 0.001}
        assert runs[1].params["qos"]["read_lat_target"] == 0.002
        # base untouched
        assert "read_lat_target" not in spec.base["qos"]

    def test_cells_do_not_share_structure(self):
        spec = ExperimentSpec(
            name="s", base={"nested": {"k": []}}, grid={"x": (1, 2)}
        )
        runs = expand(spec)
        runs[0].params["nested"]["k"].append("mutated")
        assert runs[1].params["nested"]["k"] == []

    def test_run_hash_changes_only_for_edited_cell(self):
        spec = ExperimentSpec(name="s", grid={"x": (1, 2, 3)})
        edited = spec.replace_axis("x", [1, 2, 99])
        before = {run.axes["x"]: run.run_hash for run in expand(spec)}
        after = {run.axes["x"]: run.run_hash for run in expand(edited)}
        assert before[1] == after[1]
        assert before[2] == after[2]
        assert 3 in before and 99 in after

    def test_derived_seed_content_addressed(self):
        spec = ExperimentSpec(name="s", grid={"x": (1, 2)}, seed=5)
        runs = expand(spec)
        # Distinct per cell, stable across expansions, independent of name.
        assert runs[0].derived_seed != runs[1].derived_seed
        renamed = ExperimentSpec(
            name="other", grid={"x": (1, 2)}, seed=5
        )
        assert [r.derived_seed for r in expand(renamed)] == [
            r.derived_seed for r in runs
        ]
        reseeded = expand(ExperimentSpec(name="s", grid={"x": (1, 2)}, seed=6))
        assert runs[0].derived_seed != reseeded[0].derived_seed

    def test_describe(self):
        run = RunSpec(name="s", kind="k", params={}, axes={"b": 2, "a": 1})
        assert run.describe() == "a=1 b=2"
        bare = RunSpec(name="s", kind="k", params={})
        assert bare.describe() == bare.run_hash
