"""Spec parsing, validation, canonicalisation, and content hashing."""

import json
import math

import pytest

from repro.exp.spec import (
    ExperimentSpec,
    SpecError,
    canonical_json,
    content_hash,
    load_spec,
    seed_entropy,
)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": None}) == '{"a":null,"b":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(SpecError):
            canonical_json({"x": math.nan})

    def test_unserialisable_rejected(self):
        with pytest.raises(SpecError):
            canonical_json({"x": object()})

    def test_content_hash_is_short_hex(self):
        digest = content_hash({"a": 1})
        assert len(digest) == 16
        int(digest, 16)  # parses as hex

    def test_seed_entropy_deterministic(self):
        assert seed_entropy({"a": 1}) == seed_entropy({"a": 1})
        assert seed_entropy({"a": 1}) != seed_entropy({"a": 2})


class TestExperimentSpec:
    def test_minimal(self):
        spec = ExperimentSpec(name="s")
        assert spec.kind == "testbed"
        assert spec.seed == 0

    def test_from_dict_roundtrip(self):
        doc = {
            "name": "sweep",
            "kind": "profile_device",
            "base": {"read_duration": 0.1},
            "grid": {"device": ["a", "b"]},
            "zip": {"x": [1, 2], "y": [3, 4]},
            "seed": 7,
        }
        spec = ExperimentSpec.from_dict(doc)
        assert spec.to_dict() == doc

    def test_missing_name(self):
        with pytest.raises(SpecError, match="name"):
            ExperimentSpec.from_dict({"kind": "testbed"})

    def test_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown spec keys"):
            ExperimentSpec.from_dict({"name": "s", "axes": {}})

    def test_empty_axis_values(self):
        with pytest.raises(SpecError, match="non-empty list"):
            ExperimentSpec(name="s", grid={"device": []})

    def test_zip_length_mismatch(self):
        with pytest.raises(SpecError, match="same length"):
            ExperimentSpec(name="s", zip_axes={"x": [1, 2], "y": [1]})

    def test_axis_in_both_families(self):
        with pytest.raises(SpecError, match="both grid and zip"):
            ExperimentSpec(name="s", grid={"x": [1]}, zip_axes={"x": [2]})

    def test_name_excluded_from_hash(self):
        a = ExperimentSpec(name="alpha", grid={"x": (1, 2)})
        b = ExperimentSpec(name="beta", grid={"x": (1, 2)})
        assert a.sweep_hash == b.sweep_hash

    def test_hash_sensitive_to_content(self):
        a = ExperimentSpec(name="s", grid={"x": (1, 2)})
        b = ExperimentSpec(name="s", grid={"x": (1, 3)})
        c = ExperimentSpec(name="s", grid={"x": (1, 2)}, seed=1)
        assert a.sweep_hash != b.sweep_hash
        assert a.sweep_hash != c.sweep_hash

    def test_replace_axis(self):
        spec = ExperimentSpec(name="s", grid={"x": (1, 2)}, zip_axes={"y": (5,)})
        assert ExperimentSpec.replace_axis(spec, "x", [1, 9]).grid["x"] == (1, 9)
        assert spec.replace_axis("y", [6]).zip_axes["y"] == (6,)
        with pytest.raises(SpecError, match="no such axis"):
            spec.replace_axis("z", [1])


class TestLoadSpec:
    def test_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"name": "s", "grid": {"x": [1, 2]}}))
        spec = load_spec(path)
        assert spec.grid["x"] == (1, 2)

    def test_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "sweep.toml"
        path.write_text(
            'name = "s"\nseed = 3\n[base]\nduration = 0.5\n'
            '[grid]\ndevice = ["a", "b"]\n'
        )
        spec = load_spec(path)
        assert spec.seed == 3
        assert spec.base["duration"] == 0.5
        assert spec.grid["device"] == ("a", "b")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="no such spec file"):
            load_spec(tmp_path / "nope.toml")

    def test_bad_extension(self, tmp_path):
        path = tmp_path / "sweep.yaml"
        path.write_text("name: s")
        with pytest.raises(SpecError, match="unsupported spec extension"):
            load_spec(path)

    def test_repo_smoke_spec_parses(self):
        pytest.importorskip("tomllib")
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        spec = load_spec(repo_root / "examples" / "specs" / "smoke_sweep.toml")
        assert spec.kind == "testbed"
        assert len(spec.grid) == 2
