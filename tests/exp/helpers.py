"""Worker-importable experiment functions for the runner tests.

These live in a real module (not a test body) so the runner can resolve
them by dotted path inside pool workers.
"""

from __future__ import annotations

from typing import Any, Dict

#: Per-tag attempt counters for the flaky kind (reset by tests).
CALLS: Dict[str, int] = {}


def quick(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Cheap deterministic kind: echoes params and the derived seed."""
    return {"value": params.get("value", 0), "seed": seed}


def always_fail(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    raise RuntimeError(f"boom-{params.get('tag', '')}")


def hang_forever(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Never returns: exercises the runner's wall-clock timeout kill path."""
    import time

    while True:  # pragma: no cover - the worker is terminated from outside
        time.sleep(0.1)


def fail_once_then_ok(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Fails on the first attempt for each tag, succeeds on the retry.

    Only meaningful with ``workers=1`` (the counter lives in-process).
    """
    tag = str(params.get("tag", ""))
    CALLS[tag] = CALLS.get(tag, 0) + 1
    if CALLS[tag] == 1:
        raise ValueError(f"transient-{tag}")
    return {"recovered": True, "attempts_seen": CALLS[tag]}
