"""Result-cache semantics: the (content hash, seed, version) key."""

import pytest

import repro
from repro.exp.cache import (
    HIT,
    MISS_ABSENT,
    MISS_FAILED,
    MISS_FORCED,
    MISS_STALE,
    MISS_VERSION,
    ResultCache,
)
from repro.exp.grid import RunSpec
from repro.exp.runner import run_sweep
from repro.exp.spec import ExperimentSpec
from repro.exp.store import ArtifactStore


def make_run(value=1, seed=0):
    return RunSpec(
        name="s", kind="tests.exp.helpers.quick",
        params={"value": value}, axes={"value": value}, seed=seed,
    )


class TestResultCacheUnit:
    def test_absent_then_hit(self, tmp_path):
        cache = ResultCache(ArtifactStore(tmp_path))
        run = make_run()
        assert cache.lookup(run).reason == MISS_ABSENT
        cache.commit(run, status="ok", attempts=1, wall_sec=0.5, result={"v": 1})
        decision = cache.lookup(run)
        assert decision.hit and decision.reason == HIT
        assert decision.result == {"v": 1}
        assert decision.meta["wall_sec"] == 0.5

    def test_forced_miss(self, tmp_path):
        cache = ResultCache(ArtifactStore(tmp_path))
        run = make_run()
        cache.commit(run, status="ok", attempts=1, wall_sec=0.0, result={})
        assert cache.lookup(run, force=True).reason == MISS_FORCED

    def test_failed_runs_never_hit(self, tmp_path):
        cache = ResultCache(ArtifactStore(tmp_path))
        run = make_run()
        cache.commit(
            run, status="failed", attempts=2, wall_sec=0.1,
            error={"type": "RuntimeError", "message": "boom"},
        )
        assert cache.lookup(run).reason == MISS_FAILED
        # Even with a (tampered-in) result present, failed status blocks the hit.
        cache.store.write_json(run.run_hash, "result.json", {"v": 1})
        assert cache.lookup(run).reason == MISS_FAILED

    def test_ok_meta_without_result_is_absent(self, tmp_path):
        # An interrupted sweep can leave meta.json without result.json;
        # that must read as a re-runnable miss, not a crash or a hit.
        store = ArtifactStore(tmp_path)
        cache = ResultCache(store)
        run = make_run()
        cache.commit(run, status="ok", attempts=1, wall_sec=0.0, result={"v": 1})
        store.path(run.run_hash, "result.json").unlink()
        assert cache.lookup(run).reason == MISS_ABSENT

    def test_version_mismatch(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run = make_run()
        ResultCache(store, version="1.0").commit(
            run, status="ok", attempts=1, wall_sec=0.0, result={"v": 1}
        )
        assert ResultCache(store, version="1.0").lookup(run).hit
        assert ResultCache(store, version="2.0").lookup(run).reason == MISS_VERSION

    def test_stale_metadata(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache = ResultCache(store)
        run = make_run()
        cache.commit(run, status="ok", attempts=1, wall_sec=0.0, result={"v": 1})
        meta = store.read_json(run.run_hash, "meta.json")
        meta["seed"] = 999
        store.write_json(run.run_hash, "meta.json", meta)
        assert cache.lookup(run).reason == MISS_STALE


class TestCacheThroughSweeps:
    SPEC = ExperimentSpec(
        name="cache-sweep",
        kind="tests.exp.helpers.quick",
        grid={"value": (1, 2, 3)},
    )

    def test_same_spec_and_seed_hits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = run_sweep(self.SPEC, store, workers=1)
        assert first.cache_hits == 0 and first.failures == 0
        second = run_sweep(self.SPEC, store, workers=1)
        assert second.cache_hits == 3
        assert second.hit_rate == 1.0
        assert [o.result for o in second.outcomes] == [o.result for o in first.outcomes]

    def test_changed_axis_value_is_single_cell_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_sweep(self.SPEC, store, workers=1)
        edited = self.SPEC.replace_axis("value", [1, 2, 99])
        report = run_sweep(edited, store, workers=1)
        assert report.cache_hits == 2
        assert report.executed == 1
        missed = [o for o in report.outcomes if not o.cached]
        assert missed[0].run.axes == {"value": 99}

    def test_changed_seed_is_full_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_sweep(self.SPEC, store, workers=1)
        reseeded = ExperimentSpec.from_dict({**self.SPEC.to_dict(), "seed": 9})
        report = run_sweep(reseeded, store, workers=1)
        assert report.cache_hits == 0

    def test_version_bump_is_full_miss(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        run_sweep(self.SPEC, store, workers=1)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        report = run_sweep(self.SPEC, store, workers=1)
        assert report.cache_hits == 0
        assert all(o.cache_reason == "version-changed" for o in report.outcomes)
        # And the re-run results are now cached under the new version.
        again = run_sweep(self.SPEC, store, workers=1)
        assert again.cache_hits == 3

    def test_force_reexecutes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_sweep(self.SPEC, store, workers=1)
        report = run_sweep(self.SPEC, store, workers=1, force=True)
        assert report.cache_hits == 0
        assert report.executed == 3
