"""The ``python -m repro.exp`` front-end, exercised in-process."""

import json

import pytest

from repro.exp.cli import main


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({
        "name": "cli-sweep",
        "kind": "tests.exp.helpers.quick",
        "grid": {"value": [1, 2]},
    }))
    return path


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


class TestRun:
    def test_run_writes_artifacts_and_bench(self, spec_path, store_dir, capsys):
        code = main(["run", str(spec_path), "--out", str(store_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out
        assert "2 runs: 0 cached, 2 executed, 0 failed" in out
        bench = json.loads((store_dir / "BENCH_sweep.json").read_text())
        assert bench["schema"] == "repro.exp.sweep/1"
        assert bench["totals"]["runs"] == 2
        run_dirs = sorted(p.name for p in (store_dir / "runs").iterdir())
        assert len(run_dirs) == 2

    def test_second_run_hits_cache(self, spec_path, store_dir, capsys):
        main(["run", str(spec_path), "--out", str(store_dir), "--quiet"])
        code = main([
            "run", str(spec_path), "--out", str(store_dir),
            "--min-hit-rate", "1.0",
        ])
        assert code == 0
        assert "2 cached, 0 executed" in capsys.readouterr().out

    def test_min_hit_rate_fails_on_cold_store(self, spec_path, store_dir, capsys):
        code = main([
            "run", str(spec_path), "--out", str(store_dir),
            "--min-hit-rate", "1.0", "--quiet",
        ])
        assert code == 1
        assert "below required" in capsys.readouterr().err

    def test_failures_exit_nonzero(self, tmp_path, store_dir, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "bad",
            "kind": "tests.exp.helpers.always_fail",
            "base": {"tag": "cli"},
        }))
        code = main(["run", str(path), "--out", str(store_dir), "--quiet"])
        assert code == 1
        assert "RuntimeError: boom-cli" in capsys.readouterr().err

    def test_bench_json_override(self, spec_path, store_dir, tmp_path):
        bench = tmp_path / "elsewhere" / "perf.json"
        main([
            "run", str(spec_path), "--out", str(store_dir),
            "--bench-json", str(bench), "--quiet",
        ])
        assert json.loads(bench.read_text())["name"] == "cli-sweep"

    def test_bad_spec_path_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such spec file"):
            main(["run", str(tmp_path / "nope.json")])


class TestStatusAndCollect:
    def test_status_before_and_after(self, spec_path, store_dir, capsys):
        assert main(["status", str(spec_path), "--out", str(store_dir)]) == 0
        assert "0/2 cells cached" in capsys.readouterr().out
        main(["run", str(spec_path), "--out", str(store_dir), "--quiet"])
        capsys.readouterr()
        assert main(["status", str(spec_path), "--out", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells cached" in out
        assert "value=1" in out

    def test_collect_stdout(self, spec_path, store_dir, capsys):
        main(["run", str(spec_path), "--out", str(store_dir), "--quiet"])
        capsys.readouterr()
        assert main(["collect", "--out", str(store_dir)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document) == 2
        assert all(entry["meta"]["status"] == "ok" for entry in document)
        assert sorted(e["result"]["value"] for e in document) == [1, 2]

    def test_collect_to_file(self, spec_path, store_dir, tmp_path):
        main(["run", str(spec_path), "--out", str(store_dir), "--quiet"])
        output = tmp_path / "collected.json"
        assert main(["collect", "--out", str(store_dir),
                     "--output", str(output)]) == 0
        assert len(json.loads(output.read_text())) == 2
