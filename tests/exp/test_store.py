"""Artifact store: layout, atomic writes, collection."""

import pytest

from repro.exp.store import ArtifactStore, StoreError


class TestArtifactStore:
    def test_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.write_json("abc123", "result.json", {"x": 1})
        assert path == tmp_path / "runs" / "abc123" / "result.json"
        assert store.has("abc123", "result.json")
        assert not store.has("abc123", "meta.json")

    def test_canonical_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_json("h1", "result.json", {"b": 1, "a": 2})
        assert store.result_bytes("h1") == b'{"a":2,"b":1}\n'

    def test_no_tmp_residue(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_json("h1", "result.json", {"a": 1})
        leftovers = [p.name for p in (tmp_path / "runs" / "h1").iterdir()]
        assert leftovers == ["result.json"]

    def test_try_read_corrupt_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_json("h1", "meta.json", {"a": 1})
        store.path("h1", "meta.json").write_text("{not json")
        assert store.try_read_json("h1", "meta.json") is None

    def test_read_json_missing_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError, match="missing or unreadable"):
            store.read_json("h1", "meta.json")

    def test_result_bytes_missing_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no result"):
            ArtifactStore(tmp_path).result_bytes("h1")

    def test_invalid_hash_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(StoreError, match="invalid run hash"):
                store.run_dir(bad)

    def test_list_runs_sorted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.list_runs() == []
        for run_hash in ("bbb", "aaa"):
            store.write_json(run_hash, "spec.json", {})
        assert store.list_runs() == ["aaa", "bbb"]

    def test_write_lines(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_lines("h1", "trace.jsonl", ['{"a":1}', '{"b":2}'])
        text = store.path("h1", "trace.jsonl").read_text()
        assert text == '{"a":1}\n{"b":2}\n'

    def test_collect(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_json("h1", "spec.json", {"kind": "k"})
        store.write_json("h1", "meta.json", {"status": "ok"})
        store.write_json("h1", "result.json", {"v": 1})
        store.write_json("h2", "spec.json", {"kind": "k"})
        collected = store.collect()
        assert [entry["run"] for entry in collected] == ["h1", "h2"]
        assert collected[0]["result"] == {"v": 1}
        assert collected[1]["result"] is None
