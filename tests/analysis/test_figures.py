"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.figures import render_series, sparkline
from repro.analysis.stats import TimeSeries


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1

    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline(list(range(9)))
        assert line[0] < line[-1]
        assert len(line) == 9

    def test_resampled_to_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40


class TestRenderSeries:
    def make_series(self):
        series = TimeSeries("x")
        for index in range(50):
            series.record(index * 0.1, float(index % 10))
        return series

    def test_empty_series(self):
        assert "no data" in render_series(TimeSeries("x"))

    def test_contains_title_and_bounds(self):
        out = render_series(self.make_series(), title="demo", width=40, height=6)
        assert "demo" in out
        assert "9" in out  # max label
        assert "|" in out and "+" in out

    def test_dimensions(self):
        out = render_series(self.make_series(), title="t", width=40, height=6)
        lines = out.splitlines()
        # title + height rows + axis + time labels
        assert len(lines) == 1 + 6 + 1 + 1
        for line in lines[1:7]:
            assert len(line) <= 10 + 40

    def test_markers_rendered(self):
        out = render_series(
            self.make_series(), width=40, markers=[(2.0, "update")]
        )
        assert "^" in out
        assert "update" in out

    def test_flat_series_does_not_crash(self):
        series = TimeSeries("flat")
        series.record(0.0, 1.0)
        series.record(1.0, 1.0)
        out = render_series(series, width=20, height=4)
        assert "•" in out
