"""Tests for streaming statistics primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import LatencyWindow, RateMeter, Summary, TimeSeries, percentile


class TestPercentile:
    def test_known_values(self):
        data = list(range(1, 101))  # 1..100
        assert percentile(data, 50) == 50
        assert percentile(data, 90) == 90
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        assert percentile(data, 0) == 1

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(
        data=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
        pct=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_result_is_a_sample_within_bounds(self, data, pct):
        result = percentile(data, pct)
        assert result in data
        assert min(data) <= result <= max(data)

    @given(data=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_monotone_in_pct(self, data):
        values = [percentile(data, p) for p in (10, 50, 90, 99)]
        assert values == sorted(values)


class TestLatencyWindow:
    def test_percentile_over_window(self):
        window = LatencyWindow(window=1.0)
        for index in range(10):
            window.record(0.0, float(index))
        assert window.percentile(0.5, 50) == 4.0
        assert window.count(0.5) == 10

    def test_old_samples_pruned(self):
        window = LatencyWindow(window=1.0)
        window.record(0.0, 100.0)
        window.record(2.0, 1.0)
        assert window.percentile(2.5, 99) == 1.0
        assert window.count(2.5) == 1

    def test_empty_window_returns_none(self):
        window = LatencyWindow(window=1.0)
        assert window.percentile(0.0, 50) is None
        assert window.mean(0.0) is None

    def test_mean(self):
        window = LatencyWindow(window=10.0)
        for value in (1.0, 2.0, 3.0):
            window.record(0.0, value)
        assert window.mean(1.0) == pytest.approx(2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow(window=0.0)


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter(window=1.0)
        for index in range(100):
            meter.record(index * 0.01)
        assert meter.rate(1.0) == pytest.approx(100, rel=0.05)

    def test_weighted_amounts(self):
        meter = RateMeter(window=1.0)
        meter.record(0.5, amount=4096)
        assert meter.rate(0.6) == pytest.approx(4096)
        assert meter.total == 4096

    def test_rate_decays(self):
        meter = RateMeter(window=1.0)
        meter.record(0.0)
        assert meter.rate(2.0) == 0.0


class TestTimeSeries:
    def test_record_and_slice(self):
        series = TimeSeries("x")
        for t in range(10):
            series.record(float(t), t * 10.0)
        assert series.slice(2.0, 5.0) == [20.0, 30.0, 40.0]
        assert series.mean(2.0, 5.0) == pytest.approx(30.0)
        assert series.max(0.0, 100.0) == 90.0
        assert series.last() == 90.0
        assert len(series) == 10

    def test_non_monotone_rejected(self):
        series = TimeSeries()
        series.record(1.0, 0.0)
        with pytest.raises(ValueError):
            series.record(0.5, 0.0)

    def test_empty_reductions_raise(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.mean()
        with pytest.raises(ValueError):
            series.last()

    def test_iteration(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]


class TestSummary:
    def test_of_samples(self):
        summary = Summary.of(range(1, 101))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50
        assert summary.p99 == 99
        assert summary.maximum == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.of([])
