"""Tests for the report/table emitters."""

import pytest

from repro.analysis.report import Table, format_ratio, format_si


class TestFormatSI:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (750_000, "750.00K"),
            (1_500_000, "1.50M"),
            (2.5e9, "2.50G"),
            (42.0, "42.00"),
        ],
    )
    def test_prefixes(self, value, expected):
        assert format_si(value) == expected

    def test_unit_suffix(self):
        assert format_si(1e6, "IOPS") == "1.00MIOPS"


class TestFormatRatio:
    def test_basic(self):
        assert format_ratio(20, 10) == "2.00:1"

    def test_zero_denominator(self):
        assert format_ratio(5, 0) == "inf:1"


class TestTable:
    def test_render_contains_rows_and_title(self):
        table = Table("Figure X", ["mech", "iops"])
        table.add_row("iocost", 750000)
        table.add_row("bfq", 120000)
        text = str(table)
        assert "Figure X" in text
        assert "iocost" in text
        assert "750000" in text
        lines = text.splitlines()
        assert len(lines) == 6  # title, rule, header, rule, 2 rows

    def test_wrong_cell_count_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_columns_aligned(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("longer-name", 22)
        lines = str(table).splitlines()
        # All data rows have the value column starting at the same offset.
        assert lines[4].index("1") == lines[5].index("2")
