"""Tests for the global vtime clock."""

import pytest

from repro.core.vtime import VTimeClock
from repro.sim import Simulator


def test_vtime_tracks_wall_clock_at_unit_rate():
    sim = Simulator()
    clock = VTimeClock(sim)
    sim.run(until=2.0)
    assert clock.now() == pytest.approx(2.0)


def test_vrate_scales_progression():
    sim = Simulator()
    clock = VTimeClock(sim, vrate=1.5)
    sim.run(until=2.0)
    assert clock.now() == pytest.approx(3.0)


def test_set_vrate_preserves_history():
    sim = Simulator()
    clock = VTimeClock(sim, vrate=1.0)
    sim.run(until=1.0)
    clock.set_vrate(2.0)
    assert clock.now() == pytest.approx(1.0)
    sim.run(until=2.0)
    assert clock.now() == pytest.approx(3.0)


def test_multiple_rate_changes_compose():
    sim = Simulator()
    clock = VTimeClock(sim)
    sim.run(until=1.0)      # +1.0 @ 1x
    clock.set_vrate(0.5)
    sim.run(until=3.0)      # +1.0 @ 0.5x
    clock.set_vrate(4.0)
    sim.run(until=3.5)      # +2.0 @ 4x
    assert clock.now() == pytest.approx(4.0)


def test_wall_delay_for_gap():
    sim = Simulator()
    clock = VTimeClock(sim, vrate=2.0)
    assert clock.wall_delay_for(1.0) == pytest.approx(0.5)
    assert clock.wall_delay_for(0.0) == 0.0
    assert clock.wall_delay_for(-1.0) == 0.0


def test_invalid_vrate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        VTimeClock(sim, vrate=0.0)
    clock = VTimeClock(sim)
    with pytest.raises(ValueError):
        clock.set_vrate(-1.0)
