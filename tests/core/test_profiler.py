"""Tests for offline device profiling."""

import pytest

from repro.block.device import DeviceSpec
from repro.core.profiler import profile_device

# A clean, noise-free device so measured parameters can be checked exactly.
CLEAN_SPEC = DeviceSpec(
    name="clean",
    parallelism=8,
    srv_rand_read=100e-6,
    srv_seq_read=80e-6,
    srv_rand_write=150e-6,
    srv_seq_write=120e-6,
    read_bw=1e9,
    write_bw=0.8e9,
    sigma=0.0,
    nr_slots=128,
)

# Same device with a write buffer that degrades sustained writes.
GC_SPEC = DeviceSpec(
    name="gcdev",
    parallelism=8,
    srv_rand_read=100e-6,
    srv_seq_read=80e-6,
    srv_rand_write=20e-6,
    srv_seq_write=20e-6,
    read_bw=1e9,
    write_bw=1.5e9,
    sigma=0.0,
    gc_buffer_bytes=16 * 1024 * 1024,
    gc_drain_bps=200e6,
    gc_write_slowdown=6.0,
    nr_slots=128,
)


@pytest.fixture(scope="module")
def clean_profile():
    return profile_device(CLEAN_SPEC, read_duration=0.2, write_duration=0.4)


class TestProfileAccuracy:
    def test_random_read_iops(self, clean_profile):
        assert clean_profile.rrandiops == pytest.approx(
            CLEAN_SPEC.peak_rand_read_iops, rel=0.05
        )

    def test_sequential_read_iops(self, clean_profile):
        assert clean_profile.rseqiops == pytest.approx(
            CLEAN_SPEC.peak_seq_read_iops, rel=0.05
        )

    def test_read_bandwidth(self, clean_profile):
        assert clean_profile.rbps == pytest.approx(CLEAN_SPEC.read_bw, rel=0.1)

    def test_write_iops(self, clean_profile):
        assert clean_profile.wrandiops == pytest.approx(
            CLEAN_SPEC.peak_rand_write_iops, rel=0.05
        )
        assert clean_profile.wseqiops == pytest.approx(
            CLEAN_SPEC.peak_seq_write_iops, rel=0.05
        )

    def test_write_bandwidth(self, clean_profile):
        assert clean_profile.wbps == pytest.approx(CLEAN_SPEC.write_bw, rel=0.1)

    def test_latency_observed(self, clean_profile):
        # At saturation (depth 4x parallelism) waiting inflates latency to
        # roughly depth/parallelism × service time.
        assert clean_profile.read_lat_p50 >= CLEAN_SPEC.srv_rand_read


class TestProfileOutputs:
    def test_model_params_roundtrip(self, clean_profile):
        params = clean_profile.to_model_params()
        assert params.rrandiops == clean_profile.rrandiops
        model = clean_profile.to_cost_model()
        assert model.params is params or model.params.rbps == params.rbps

    def test_config_line_format(self, clean_profile):
        line = clean_profile.config_line()
        for key in ("rbps=", "rseqiops=", "rrandiops=", "wbps=", "wseqiops=", "wrandiops="):
            assert key in line


class TestSustainedWrites:
    def test_gc_profile_measures_sustained_not_burst(self):
        profile = profile_device(GC_SPEC, read_duration=0.2, write_duration=2.0)
        burst_iops = GC_SPEC.peak_rand_write_iops  # 400K on paper
        # Sustained rate must reflect GC slowdown, well below burst.
        assert profile.wrandiops < 0.6 * burst_iops
        # Reads are unaffected by the write buffer.
        assert profile.rrandiops == pytest.approx(
            GC_SPEC.peak_rand_read_iops, rel=0.05
        )
