"""Tests for §3.4 QoS parameter tuning (scaled-down sweeps)."""

import pytest

from repro.block.device import DeviceSpec
from repro.core.qos import QoSParams
from repro.core.qos_tuning import TuningResult, tune_qos

MB = 1024 * 1024

TUNE_SPEC = DeviceSpec(
    name="tunedev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=400e6,
    write_bw=400e6,
    sigma=0.1,
    nr_slots=64,
)


@pytest.fixture(scope="module")
def tuning():
    return tune_qos(
        TUNE_SPEC,
        candidates=(0.25, 0.5, 1.0, 2.0),
        duration=4.0,
        total_mem=64 * MB,
    )


def test_sweep_covers_candidates(tuning):
    assert set(tuning.solo_rps) == {0.25, 0.5, 1.0, 2.0}
    assert set(tuning.protected_p95) == {0.25, 0.5, 1.0, 2.0}


def test_solo_rps_grows_with_vrate(tuning):
    # Paging-bound: more IO budget means more throughput (weakly).
    assert tuning.solo_rps[1.0] >= tuning.solo_rps[0.25] * 0.9


def test_bounds_are_ordered(tuning):
    assert tuning.vrate_min <= tuning.vrate_max
    assert tuning.vrate_min in tuning.candidates
    assert tuning.vrate_max in tuning.candidates


def test_to_qos_applies_bounds(tuning):
    qos = tuning.to_qos(QoSParams(read_lat_target=1e-3))
    assert qos.vrate_min == tuning.vrate_min
    assert qos.vrate_max == tuning.vrate_max
    assert qos.read_lat_target == 1e-3
