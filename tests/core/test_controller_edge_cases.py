"""Edge-case tests for the IOCost controller."""

import numpy as np
import pytest

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator

SPEC = DeviceSpec(
    name="edge",
    parallelism=2,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=8,
)

FIXED = QoSParams(
    read_lat_target=None, write_lat_target=None,
    vrate_min=1.0, vrate_max=1.0, period=0.02,
)


def make_env(**kwargs):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(SPEC)),
        qos=kwargs.pop("qos", FIXED), **kwargs,
    )
    layer = BlockLayer(sim, device, controller)
    return sim, layer, controller, CgroupTree()


def test_weight_change_applies_mid_stream():
    sim, layer, controller, tree = make_env()
    a = tree.create("a", weight=100)
    b = tree.create("b", weight=100)

    def closed_loop(group, seed):
        rng = np.random.default_rng(seed)

        def issue(_v=None):
            if sim.now < 1.0:
                sector = int(rng.integers(1, 1 << 20)) * 8
                layer.submit(Bio(IOOp.READ, 4096, sector, group)).wait(issue)

        for _ in range(8):
            issue()

    closed_loop(a, 1)
    closed_loop(b, 2)
    sim.run(until=0.5)
    snap = layer.snapshot_counts()
    controller.set_weight(a, 300)
    sim.run(until=1.0)
    controller.detach()
    a_done = layer.iops_of(a, since_counts=snap)
    b_done = layer.iops_of(b, since_counts=snap)
    assert a_done / b_done == pytest.approx(3.0, rel=0.15)


def test_urgent_bios_respect_request_slots():
    # Swap bios bypass budget but not the device's request slots.
    sim, layer, controller, tree = make_env()
    group = tree.create("g")
    for index in range(20):
        layer.submit(
            Bio(IOOp.WRITE, 4096, index * 8, group, flags=BioFlags.SWAP)
        )
    assert layer.inflight <= SPEC.nr_slots
    sim.run(until=0.1)
    controller.detach()
    assert layer.completed_ios == 20


def test_zero_weight_never_configured_but_min_weight_works():
    sim, layer, controller, tree = make_env()
    tiny = tree.create("tiny", weight=1)
    big = tree.create("big", weight=10000)
    done = []
    layer.submit(Bio(IOOp.READ, 4096, 8, tiny)).wait(done.append)
    sim.run(until=0.5)
    controller.detach()
    assert done  # even a 1-weight group makes progress


def test_detach_then_no_more_planning():
    sim, layer, controller, tree = make_env()
    group = tree.create("g")
    layer.submit(Bio(IOOp.READ, 4096, 8, group))
    sim.run(until=0.05)
    ticks = len(controller.vrate_ctl.vrate_series)
    controller.detach()
    sim.run(until=1.0)
    assert len(controller.vrate_ctl.vrate_series) == ticks


def test_inactive_group_keeps_no_stale_wake_timer():
    sim, layer, controller, tree = make_env()
    group = tree.create("g")
    # Saturate briefly so a wake timer gets armed, then stop.
    for index in range(30):
        layer.submit(Bio(IOOp.READ, 4096, index * 8, group))
    sim.run(until=2.0)
    controller.detach()
    state = controller.tree.lookup("g")
    assert not state.waitq
    assert layer.completed_ios == 30


def test_sequential_cost_discount_applies():
    # A cgroup streaming sequentially is charged the (cheaper) sequential
    # cost, so it completes more IO than a random peer at equal weight on
    # a device where sequential is faster.
    spec = DeviceSpec(
        name="seqdev",
        parallelism=2,
        srv_rand_read=200e-6,
        srv_seq_read=50e-6,
        srv_rand_write=200e-6,
        srv_seq_write=50e-6,
        read_bw=1e9,
        write_bw=1e9,
        sigma=0.0,
        nr_slots=64,
    )
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(0))
    # vrate pinned below the physical capacity of the *interleaved* mix
    # (the random stream's detours break some of the sequential run), so
    # the budgets — and with them the cost-model discount — actually bind.
    qos = QoSParams(
        read_lat_target=None, write_lat_target=None,
        vrate_min=0.5, vrate_max=0.5, period=0.02,
    )
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(spec)), qos=qos
    )
    layer = BlockLayer(sim, device, controller)
    tree = CgroupTree()
    seq = tree.create("seq", weight=100)
    rand = tree.create("rand", weight=100)

    from repro.workloads.synthetic import ClosedLoopWorkload

    wl_seq = ClosedLoopWorkload(
        sim, layer, seq, depth=16, sequential=True, stop_at=0.5, seed=1
    ).start()
    wl_rand = ClosedLoopWorkload(
        sim, layer, rand, depth=16, sequential=False, stop_at=0.5, seed=2
    ).start()
    sim.run(until=0.5)
    controller.detach()
    # Equal *occupancy*: the sequential group completes ~4x the IOs
    # (cost ratio 200us:50us).
    assert wl_seq.completed / wl_rand.completed == pytest.approx(4.0, rel=0.25)


class TestStatIntrospection:
    def test_stat_for_unknown_cgroup(self):
        sim, layer, controller, tree = make_env()
        group = tree.create("ghost", weight=42)
        stat = controller.stat(group)
        assert stat["active"] is False
        assert stat["weight"] == 42
        assert stat["hweight"] == 0.0
        assert stat["queued"] == 0

    def test_stat_reflects_live_state(self):
        sim, layer, controller, tree = make_env()
        a = tree.create("a", weight=200)
        b = tree.create("b", weight=100)
        for index in range(40):
            layer.submit(Bio(IOOp.READ, 4096, index * 8, a))
        for index in range(40):
            layer.submit(Bio(IOOp.READ, 4096, 100000 + index * 8, b))
        sim.run(until=0.01)
        stat_a = controller.stat(a)
        assert stat_a["active"] is True
        assert stat_a["hweight"] == pytest.approx(2 / 3, rel=0.01)
        assert stat_a["weight_eff"] == 200.0
        sim.run(until=0.2)
        controller.detach()

    def test_stat_shows_debt(self):
        sim, layer, controller, tree = make_env()
        leaker = tree.create("leaker", weight=25)
        other = tree.create("other", weight=500)
        for index in range(8):
            layer.submit(Bio(IOOp.READ, 4096, 5000 + index * 8, other))
        for index in range(100):
            layer.submit(
                Bio(IOOp.WRITE, 4096, index * 8, leaker, flags=BioFlags.SWAP)
            )
        stat = controller.stat(leaker)
        assert stat["debt_walltime"] > 0
        assert stat["budget"] < 0
        sim.run(until=0.2)
        controller.detach()
