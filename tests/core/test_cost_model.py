"""Tests for the linear cost model, including the paper's Figure 6 numbers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.bio import Bio, IOOp
from repro.block.device_models import SSD_NEW
from repro.cgroup import CgroupTree
from repro.core.cost_model import LinearCostModel, ModelParams

# The exact configuration shown in Figure 6 of the paper.
FIG6 = ModelParams(
    rbps=488636629,
    rseqiops=8932,
    rrandiops=8518,
    wbps=427891549,
    wseqiops=28755,
    wrandiops=21940,
)


@pytest.fixture
def cgroup():
    return CgroupTree().create("a")


def read_bio(cgroup, nbytes=4096, sequential=False):
    bio = Bio(IOOp.READ, nbytes, 0, cgroup)
    bio.sequential = sequential
    return bio


def write_bio(cgroup, nbytes=4096, sequential=False):
    bio = Bio(IOOp.WRITE, nbytes, 0, cgroup)
    bio.sequential = sequential
    return bio


class TestFigure6Translation:
    """Paper: 'For reads, this translates to 2.05ns/B of size_rate,
    sequential base cost of 104us and random base cost of 109us.'"""

    def test_read_size_rate(self):
        assert FIG6.r_size_rate == pytest.approx(2.05e-9, rel=0.01)

    def test_read_seq_base(self):
        assert FIG6.r_seq_base == pytest.approx(104e-6, rel=0.01)

    def test_read_rand_base(self):
        assert FIG6.r_rand_base == pytest.approx(109e-6, rel=0.01)

    def test_random_read_cost_example(self, cgroup):
        # Paper: "a random read bio of 32KB would cost 109us + 32 * 4096 *
        # 2.05ns" — i.e. 32 pages = 128 KiB.  (The paper's printed total of
        # 352us does not match its own formula; the formula gives ~377us.)
        model = LinearCostModel(FIG6)
        cost = model.cost(read_bio(cgroup, nbytes=32 * 4096))
        expected = FIG6.r_rand_base + 32 * 4096 * FIG6.r_size_rate
        assert cost == pytest.approx(expected)
        assert cost == pytest.approx(377e-6, rel=0.02)

    def test_write_params_translate(self):
        assert FIG6.w_size_rate == pytest.approx(1 / 427891549)
        assert FIG6.w_seq_base == pytest.approx(1 / 28755 - 4096 / 427891549)


class TestLinearCostModel:
    def test_base_selected_by_class(self, cgroup):
        model = LinearCostModel(FIG6)
        rand = model.cost(read_bio(cgroup, sequential=False))
        seq = model.cost(read_bio(cgroup, sequential=True))
        assert rand > seq
        assert rand == pytest.approx(FIG6.r_rand_base + 4096 * FIG6.r_size_rate)

    def test_write_uses_write_rate(self, cgroup):
        model = LinearCostModel(FIG6)
        cost = model.cost(write_bio(cgroup, nbytes=1 << 20, sequential=True))
        expected = FIG6.w_seq_base + (1 << 20) * FIG6.w_size_rate
        assert cost == pytest.approx(expected)

    def test_cost_monotone_in_size(self, cgroup):
        model = LinearCostModel(FIG6)
        small = model.cost(read_bio(cgroup, nbytes=4096))
        large = model.cost(read_bio(cgroup, nbytes=65536))
        assert large > small

    def test_replace_params_online(self, cgroup):
        model = LinearCostModel(FIG6)
        before = model.cost(read_bio(cgroup))
        model.replace_params(FIG6.scaled(2.0))
        after = model.cost(read_bio(cgroup))
        assert after == pytest.approx(before / 2, rel=0.01)

    def test_scaled_halves_cost(self, cgroup):
        # Claiming the device is half as capable doubles every cost.
        half = LinearCostModel(FIG6.scaled(0.5))
        full = LinearCostModel(FIG6)
        bio = read_bio(cgroup, nbytes=16384)
        assert half.cost(bio) == pytest.approx(2 * full.cost(bio), rel=0.01)


class TestModelParams:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ModelParams(rbps=0, rseqiops=1, rrandiops=1, wbps=1, wseqiops=1, wrandiops=1)

    def test_base_clamped_at_zero(self):
        # Transfer-bound device: 4k IOPS implies negative base; clamp to 0.
        params = ModelParams(
            rbps=1e6, rseqiops=1e6, rrandiops=1e6, wbps=1e6, wseqiops=1e6, wrandiops=1e6
        )
        assert params.r_seq_base == 0.0

    def test_from_device_spec_matches_peaks(self, cgroup):
        params = ModelParams.from_device_spec(SSD_NEW)
        assert params.rrandiops == pytest.approx(SSD_NEW.peak_rand_read_iops)
        assert params.rbps == SSD_NEW.read_bw
        # A perfect model prices a 4k random read at parallelism-normalised
        # device time: cost * peak_iops == 1 second of occupancy per second.
        model = LinearCostModel(params)
        cost = model.cost(read_bio(cgroup))
        assert cost * SSD_NEW.peak_rand_read_iops == pytest.approx(1.0, rel=0.01)

    @given(factor=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=30)
    def test_scaled_inverse_property(self, factor):
        scaled = FIG6.scaled(factor)
        assert scaled.r_size_rate == pytest.approx(FIG6.r_size_rate / factor)
