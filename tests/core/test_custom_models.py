"""Tests for the custom (eBPF-style) cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.bio import Bio, IOOp
from repro.cgroup import CgroupTree
from repro.core.custom_models import (
    CallableCostModel,
    PiecewiseLinearCostModel,
    TableCostModel,
)
from repro.core.cost_model import CostModel


@pytest.fixture
def cgroup():
    return CgroupTree().create("a")


def bio_of(cgroup, nbytes, is_write=False, sequential=False):
    bio = Bio(IOOp.WRITE if is_write else IOOp.READ, nbytes, 0, cgroup)
    bio.sequential = sequential
    return bio


class TestCallableCostModel:
    def test_wraps_function(self, cgroup):
        model = CallableCostModel(lambda bio: bio.nbytes * 1e-9)
        assert model.cost(bio_of(cgroup, 4096)) == pytest.approx(4.096e-6)

    def test_satisfies_protocol(self):
        assert isinstance(CallableCostModel(lambda b: 1.0), CostModel)

    def test_nonpositive_cost_rejected(self, cgroup):
        model = CallableCostModel(lambda bio: 0.0)
        with pytest.raises(ValueError):
            model.cost(bio_of(cgroup, 4096))


class TestTableCostModel:
    TABLE = {
        (False, False): [(4096, 100e-6), (65536, 250e-6), (1 << 20, 2e-3)],
        (True, False): [(4096, 150e-6), (1 << 20, 3e-3)],
    }

    def test_bucket_selection(self, cgroup):
        model = TableCostModel(self.TABLE)
        assert model.cost(bio_of(cgroup, 4096)) == 100e-6
        assert model.cost(bio_of(cgroup, 8192)) == 250e-6
        assert model.cost(bio_of(cgroup, 65536)) == 250e-6
        assert model.cost(bio_of(cgroup, 1 << 20)) == 2e-3

    def test_beyond_table_extrapolates_by_rate(self, cgroup):
        model = TableCostModel(self.TABLE)
        cost = model.cost(bio_of(cgroup, 2 << 20))
        assert cost == pytest.approx(4e-3)

    def test_missing_class_falls_back(self, cgroup):
        model = TableCostModel(self.TABLE)
        # Sequential write has no table; falls back to the random-write one.
        assert model.cost(bio_of(cgroup, 4096, is_write=True, sequential=True)) == 150e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            TableCostModel({})
        with pytest.raises(ValueError):
            TableCostModel({(False, False): []})
        with pytest.raises(ValueError):
            TableCostModel({(False, False): [(4096, -1.0)]})

    def test_satisfies_protocol(self):
        assert isinstance(TableCostModel(self.TABLE), CostModel)


class TestPiecewiseLinear:
    POINTS = {(False, False): [(4096, 100e-6), (65536, 400e-6), (1 << 20, 2e-3)]}

    def test_interpolation(self, cgroup):
        model = PiecewiseLinearCostModel(self.POINTS)
        mid = model.cost(bio_of(cgroup, (4096 + 65536) // 2))
        assert 100e-6 < mid < 400e-6
        assert mid == pytest.approx(250e-6, rel=0.05)

    def test_clamps_below_first_point(self, cgroup):
        model = PiecewiseLinearCostModel(self.POINTS)
        assert model.cost(bio_of(cgroup, 512)) == 100e-6

    def test_extrapolates_above_last_point(self, cgroup):
        model = PiecewiseLinearCostModel(self.POINTS)
        cost = model.cost(bio_of(cgroup, 2 << 20))
        assert cost > 2e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCostModel({})
        with pytest.raises(ValueError):
            PiecewiseLinearCostModel({(False, False): [(4096, 1e-4)]})

    @given(nbytes=st.integers(min_value=1, max_value=4 << 20))
    @settings(max_examples=100)
    def test_cost_monotone_in_size(self, nbytes):
        model = PiecewiseLinearCostModel(self.POINTS)
        group = CgroupTree().create("a")
        smaller = model.cost(bio_of(group, nbytes))
        larger = model.cost(bio_of(group, nbytes + 4096))
        assert larger >= smaller - 1e-15


class TestIntegrationWithIOCost:
    def test_iocost_accepts_custom_model(self, cgroup):
        import numpy as np

        from repro.block.device import Device, DeviceSpec
        from repro.block.layer import BlockLayer
        from repro.core.controller import IOCost
        from repro.core.qos import QoSParams
        from repro.sim import Simulator

        spec = DeviceSpec(
            name="x", parallelism=4,
            srv_rand_read=100e-6, srv_seq_read=100e-6,
            srv_rand_write=100e-6, srv_seq_write=100e-6,
            read_bw=1e9, write_bw=1e9, sigma=0.0, nr_slots=64,
        )
        sim = Simulator()
        device = Device(sim, spec, np.random.default_rng(0))
        model = TableCostModel({(False, False): [(4096, 25e-6), (1 << 20, 2e-3)]})
        controller = IOCost(
            model,
            qos=QoSParams(read_lat_target=None, write_lat_target=None,
                          vrate_min=1.0, vrate_max=1.0, period=0.025),
        )
        layer = BlockLayer(sim, device, controller)
        group = CgroupTree().create("w")
        done = []
        layer.submit(Bio(IOOp.READ, 4096, 8, group)).wait(done.append)
        sim.run(until=0.01)
        controller.detach()
        assert done
        assert done[0].abs_cost == 25e-6
