"""Tests for hweight compounding, caching, and activity tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgroup import CgroupTree
from repro.core.hierarchy import WeightTree


def build(weights):
    """Build a cgroup tree + weight tree from {path: weight}."""
    cgroups = CgroupTree()
    tree = WeightTree()
    states = {}
    for path, weight in weights.items():
        group = cgroups.get_or_create(path, weight=weight)
        group.weight = weight
        states[path] = tree.state_of(group)
    return cgroups, tree, states


class TestHweight:
    def test_single_active_group_gets_everything(self):
        _, tree, states = build({"a": 100})
        tree.activate(states["a"])
        assert tree.hweight(states["a"]) == pytest.approx(1.0)

    def test_siblings_split_by_weight(self):
        _, tree, states = build({"a": 200, "b": 100})
        tree.activate(states["a"])
        tree.activate(states["b"])
        assert tree.hweight(states["a"]) == pytest.approx(2 / 3)
        assert tree.hweight(states["b"]) == pytest.approx(1 / 3)

    def test_hweight_compounds_down_hierarchy(self):
        _, tree, states = build(
            {"top": 100, "other": 100, "top/x": 300, "top/y": 100}
        )
        for path in ("other", "top/x", "top/y"):
            tree.activate(states[path])
        # top and other split 50/50; inside top, x:y = 3:1.
        assert tree.hweight(states["top/x"]) == pytest.approx(0.5 * 0.75)
        assert tree.hweight(states["top/y"]) == pytest.approx(0.5 * 0.25)

    def test_inactive_sibling_excluded(self):
        _, tree, states = build({"a": 100, "b": 100})
        tree.activate(states["a"])
        # b never activated: a has the whole device.
        assert tree.hweight(states["a"]) == pytest.approx(1.0)
        tree.activate(states["b"])
        assert tree.hweight(states["a"]) == pytest.approx(0.5)

    def test_deactivation_redistributes(self):
        _, tree, states = build({"a": 100, "b": 100})
        tree.activate(states["a"])
        tree.activate(states["b"])
        tree.deactivate(states["b"])
        assert tree.hweight(states["a"]) == pytest.approx(1.0)

    def test_inactive_group_sees_prospective_share(self):
        _, tree, states = build({"a": 100, "b": 300})
        tree.activate(states["a"])
        # b is inactive, but its hweight answers "what would I get if I
        # issued an IO right now" — counted alongside the active set.
        assert tree.hweight(states["b"]) == pytest.approx(0.75)

    def test_root_hweight_is_one(self):
        _, tree, states = build({"a": 100})
        tree.activate(states["a"])
        assert tree.hweight(states["a"].parent) == pytest.approx(1.0)

    @given(
        weights=st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=6)
    )
    @settings(max_examples=50)
    def test_active_sibling_hweights_sum_to_one(self, weights):
        spec = {f"g{i}": w for i, w in enumerate(weights)}
        _, tree, states = build(spec)
        for state in states.values():
            tree.activate(state)
        total = sum(tree.hweight(state) for state in states.values())
        assert total == pytest.approx(1.0)

    @given(
        top=st.integers(min_value=1, max_value=1000),
        child_weights=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=4
        ),
    )
    @settings(max_examples=50)
    def test_children_partition_parent_hweight(self, top, child_weights):
        spec = {"p": top, "q": 100}
        spec.update({f"p/c{i}": w for i, w in enumerate(child_weights)})
        _, tree, states = build(spec)
        tree.activate(states["q"])
        for i in range(len(child_weights)):
            tree.activate(states[f"p/c{i}"])
        parent_h = tree.hweight(states["p"])
        children_h = sum(
            tree.hweight(states[f"p/c{i}"]) for i in range(len(child_weights))
        )
        assert children_h == pytest.approx(parent_h)


class TestCaching:
    def test_cache_hit_until_generation_bumps(self):
        _, tree, states = build({"a": 100, "b": 100})
        tree.activate(states["a"])
        tree.activate(states["b"])
        first = tree.hweight(states["a"])
        # Mutate effective weight *without* bumping: cached value returned.
        states["b"].weight_eff = 9999.0
        assert tree.hweight(states["a"]) == first
        tree.bump()
        assert tree.hweight(states["a"]) != first

    def test_activation_invalidates_cache(self):
        _, tree, states = build({"a": 100, "b": 100})
        tree.activate(states["a"])
        assert tree.hweight(states["a"]) == pytest.approx(1.0)
        tree.activate(states["b"])
        assert tree.hweight(states["a"]) == pytest.approx(0.5)


class TestActivity:
    def test_active_refs_propagate(self):
        _, tree, states = build({"p/c1": 100, "p/c2": 100})
        tree.activate(states["p/c1"])
        tree.activate(states["p/c2"])
        assert states["p/c1"].parent.active_refs == 2
        tree.deactivate(states["p/c1"])
        assert states["p/c1"].parent.active_refs == 1

    def test_double_activate_is_noop(self):
        _, tree, states = build({"a": 100})
        tree.activate(states["a"])
        tree.activate(states["a"])
        assert states["a"].active_refs == 1

    def test_deactivate_inactive_is_noop(self):
        _, tree, states = build({"a": 100})
        tree.deactivate(states["a"])
        assert states["a"].active_refs == 0

    def test_active_leaves_excludes_internal_nodes(self):
        _, tree, states = build({"p/c": 100})
        tree.activate(states["p/c"])
        # Activate the parent too (internal nodes can have their own IO).
        tree.activate(states["p/c"].parent)
        leaves = tree.active_leaves()
        assert states["p/c"] in leaves
        assert states["p/c"].parent not in leaves


class TestWeightRefresh:
    def test_refresh_restores_base_weights(self):
        _, tree, states = build({"a": 100, "b": 100})
        states["a"].weight_eff = 10.0
        states["a"].donating = True
        tree.refresh_base_weights()
        assert states["a"].weight_eff == 100.0
        assert not states["a"].donating

    def test_rescind_restores_path_to_root(self):
        _, tree, states = build({"p/c": 100})
        child = states["p/c"]
        parent = child.parent
        child.weight_eff = parent.weight_eff = 1.0
        child.donating = parent.donating = True
        tree.rescind(child)
        assert child.weight_eff == 100.0
        assert parent.weight_eff == float(parent.cgroup.weight)
        assert not child.donating
