"""Integration tests for the IOCost controller on a simulated device."""

import numpy as np
import pytest

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.debt import SwapChargeMode
from repro.core.qos import QoSParams
from repro.sim import Simulator

# A deterministic 40K-IOPS test device with identical rand/seq behaviour so
# the oracle cost model is exact.
TEST_SPEC = DeviceSpec(
    name="testdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)

FIXED_QOS = QoSParams(
    read_lat_target=None,
    write_lat_target=None,
    vrate_min=1.0,
    vrate_max=1.0,
    period=0.025,
)

PEAK_IOPS = TEST_SPEC.peak_rand_read_iops  # 40_000


def make_env(qos=FIXED_QOS, spec=TEST_SPEC, **iocost_kwargs):
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(0))
    model = LinearCostModel(ModelParams.from_device_spec(spec))
    controller = IOCost(model, qos=qos, **iocost_kwargs)
    layer = BlockLayer(sim, device, controller)
    tree = CgroupTree()
    return sim, layer, controller, tree


class Saturator:
    """Closed-loop 4 KiB random-read generator for one cgroup."""

    def __init__(self, sim, layer, cgroup, depth=16, stop_at=None, seed=1):
        self.sim = sim
        self.layer = layer
        self.cgroup = cgroup
        self.depth = depth
        self.stop_at = stop_at
        self.rng = np.random.default_rng(seed)
        self.completed = 0

    def start(self):
        for _ in range(self.depth):
            self._issue()

    def _issue(self):
        sector = int(self.rng.integers(1, 1 << 28)) * 8
        bio = Bio(IOOp.READ, 4096, sector, self.cgroup)
        self.layer.submit(bio).wait(self._done)

    def _done(self, bio):
        self.completed += 1
        if self.stop_at is None or self.sim.now < self.stop_at:
            self._issue()


class PacedIssuer:
    """Open-loop generator issuing at a fixed rate (possibly under-using)."""

    def __init__(self, sim, layer, cgroup, rate, stop_at, seed=2):
        self.sim = sim
        self.layer = layer
        self.cgroup = cgroup
        self.interval = 1.0 / rate
        self.stop_at = stop_at
        self.rng = np.random.default_rng(seed)
        self.completed = 0

    def start(self):
        self.sim.schedule(self.interval, self._tick)

    def _tick(self):
        if self.sim.now >= self.stop_at:
            return
        sector = int(self.rng.integers(1, 1 << 28)) * 8
        bio = Bio(IOOp.READ, 4096, sector, self.cgroup)
        self.layer.submit(bio).wait(lambda _b: None)
        self.completed += 1
        self.sim.schedule(self.interval, self._tick)


class TestThroughputControl:
    def test_single_group_achieves_model_rate(self):
        sim, layer, controller, tree = make_env()
        group = tree.create("a")
        Saturator(sim, layer, group, stop_at=0.5).start()
        sim.run(until=0.6)
        achieved = layer.iops_of(group) / 0.5
        assert achieved == pytest.approx(PEAK_IOPS, rel=0.05)

    def test_equal_weights_split_evenly(self):
        sim, layer, controller, tree = make_env()
        a = tree.create("a", weight=100)
        b = tree.create("b", weight=100)
        Saturator(sim, layer, a, stop_at=0.5, seed=1).start()
        Saturator(sim, layer, b, stop_at=0.5, seed=2).start()
        sim.run(until=0.6)
        ratio = layer.iops_of(a) / layer.iops_of(b)
        assert ratio == pytest.approx(1.0, rel=0.1)

    def test_weighted_split_two_to_one(self):
        sim, layer, controller, tree = make_env()
        high = tree.create("high", weight=200)
        low = tree.create("low", weight=100)
        Saturator(sim, layer, high, stop_at=0.5, seed=1).start()
        Saturator(sim, layer, low, stop_at=0.5, seed=2).start()
        sim.run(until=0.6)
        ratio = layer.iops_of(high) / layer.iops_of(low)
        assert ratio == pytest.approx(2.0, rel=0.1)

    def test_hierarchical_split(self):
        sim, layer, controller, tree = make_env()
        # workload (500) vs system (100); inside workload, x:y = 3:1.
        x = tree.create("workload/x", weight=300)
        y = tree.create("workload/y", weight=100)
        tree.lookup("workload").weight = 500
        system = tree.create("system", weight=100)
        for seed, group in ((1, x), (2, y), (3, system)):
            Saturator(sim, layer, group, stop_at=0.5, seed=seed).start()
        sim.run(until=0.6)
        total = PEAK_IOPS * 0.5
        assert layer.iops_of(system) / total == pytest.approx(1 / 6, rel=0.15)
        assert layer.iops_of(x) / total == pytest.approx(5 / 6 * 3 / 4, rel=0.15)
        assert layer.iops_of(y) / total == pytest.approx(5 / 6 * 1 / 4, rel=0.15)


class TestWorkConservation:
    def test_idle_group_budget_flows_to_active(self):
        sim, layer, controller, tree = make_env()
        a = tree.create("a", weight=100)
        tree.create("b", weight=100)  # never issues IO
        Saturator(sim, layer, a, stop_at=0.5).start()
        sim.run(until=0.6)
        achieved = layer.iops_of(a) / 0.5
        assert achieved == pytest.approx(PEAK_IOPS, rel=0.05)

    def test_underusing_group_donates(self):
        sim, layer, controller, tree = make_env()
        busy = tree.create("busy", weight=100)
        light = tree.create("light", weight=100)
        Saturator(sim, layer, busy, stop_at=1.0).start()
        PacedIssuer(sim, layer, light, rate=1000, stop_at=1.0).start()
        sim.run(until=1.1)
        # Without donation busy would be capped at 50% = 20K IOPS; with
        # donation it should recover nearly all of the unused capacity.
        busy_rate = layer.iops_of(busy) / 1.0
        assert busy_rate > 0.85 * (PEAK_IOPS - 1000)
        assert controller.donation_passes > 0

    def test_deactivation_restores_full_share(self):
        sim, layer, controller, tree = make_env()
        a = tree.create("a", weight=100)
        b = tree.create("b", weight=100)
        # b saturates only the first 100ms, then goes silent.
        Saturator(sim, layer, a, stop_at=1.0, seed=1).start()
        Saturator(sim, layer, b, stop_at=0.1, seed=2).start()
        sim.run(until=1.1)
        snap = layer.snapshot_counts()
        # After b idles out (one full period), a should be back at peak.
        Saturator(sim, layer, a, stop_at=1.6, seed=3).start()
        sim.run(until=1.6)
        state_b = controller.tree.lookup("b")
        assert not state_b.active
        a_rate = layer.iops_of(a, since_counts=snap) / 0.5
        assert a_rate == pytest.approx(PEAK_IOPS, rel=0.1)

    def test_donor_rescinds_when_demand_returns(self):
        sim, layer, controller, tree = make_env()
        busy = tree.create("busy", weight=100)
        bursty = tree.create("bursty", weight=100)
        Saturator(sim, layer, busy, stop_at=1.0, seed=1).start()
        # Trickle so bursty is a donor, then burst mid-period.
        PacedIssuer(sim, layer, bursty, rate=500, stop_at=0.4, seed=2).start()

        def burst():
            Saturator(sim, layer, bursty, stop_at=1.0, seed=3).start()

        sim.schedule(0.4 + 0.01, burst)  # mid-period (period = 25ms)
        sim.run(until=1.1)
        assert controller.rescinds > 0
        # After the burst starts, bursty should converge back towards half.
        snap_ratio = layer.iops_of(bursty) / layer.iops_of(busy)
        assert snap_ratio > 0.25


class TestUrgentAndDebt:
    def test_swap_bio_bypasses_budget(self):
        sim, layer, controller, tree = make_env()
        group = tree.create("leaker")
        # Exhaust the group's budget with a huge prior charge.
        state = controller.tree.state_of(group)
        controller.tree.activate(state)
        state.local_vtime = controller.clock.now() + 10.0
        bio = Bio(IOOp.WRITE, 4096, 0, group, flags=BioFlags.SWAP)
        done = []
        layer.submit(bio).wait(done.append)
        sim.run(until=0.01)
        assert done  # dispatched immediately despite zero budget

    def test_swap_debt_throttles_future_io(self):
        sim, layer, controller, tree = make_env()
        group = tree.create("leaker")
        other = tree.create("other")
        Saturator(sim, layer, other, stop_at=0.3, seed=5).start()
        # 200 swap-out pages: owner accumulates debt.
        for index in range(200):
            layer.submit(Bio(IOOp.WRITE, 4096, index * 8, group, flags=BioFlags.SWAP))
        state = controller.tree.lookup("leaker")
        assert controller.debt.debt_vtime(state) > 0
        # A normal read from the leaker now waits behind the debt.
        normal_done = []
        layer.submit(Bio(IOOp.READ, 4096, 99999, group)).wait(normal_done.append)
        debt_wall = controller.debt.debt_walltime(state)
        sim.run(until=debt_wall / 2)
        assert not normal_done
        sim.run(until=debt_wall * 1.5)
        assert normal_done

    def test_root_charge_mode_creates_no_debt(self):
        sim, layer, controller, tree = make_env(swap_mode=SwapChargeMode.ROOT)
        group = tree.create("leaker")
        for index in range(200):
            layer.submit(Bio(IOOp.WRITE, 4096, index * 8, group, flags=BioFlags.SWAP))
        state = controller.tree.lookup("leaker")
        assert controller.debt.debt_vtime(state) == 0.0

    def test_origin_throttle_mode_queues_swap_io(self):
        sim, layer, controller, tree = make_env(swap_mode=SwapChargeMode.ORIGIN_THROTTLE)
        group = tree.create("leaker")
        state = controller.tree.state_of(group)
        controller.tree.activate(state)
        state.local_vtime = controller.clock.now() + 1.0  # deep in debt
        done = []
        bio = Bio(IOOp.WRITE, 4096, 0, group, flags=BioFlags.SWAP)
        layer.submit(bio).wait(done.append)
        sim.run(until=0.05)
        assert not done  # throttled like normal IO: the priority inversion

    def test_userspace_delay_reflects_debt(self):
        sim, layer, controller, tree = make_env()
        group = tree.create("leaker")
        assert controller.userspace_delay(group) == 0.0
        for index in range(500):
            layer.submit(Bio(IOOp.WRITE, 4096, index * 8, group, flags=BioFlags.SWAP))
        assert controller.userspace_delay(group) > 0.0


class TestConfiguration:
    def test_set_weight_immediate(self):
        sim, layer, controller, tree = make_env()
        a = tree.create("a", weight=100)
        b = tree.create("b", weight=100)
        sa = controller.tree.state_of(a)
        sb = controller.tree.state_of(b)
        controller.tree.activate(sa)
        controller.tree.activate(sb)
        assert controller.hweight_of(a) == pytest.approx(0.5)
        controller.set_weight(a, 300)
        assert controller.hweight_of(a) == pytest.approx(0.75)

    def test_detach_cancels_timers(self):
        sim, layer, controller, tree = make_env()
        controller.detach()
        sim.run(until=1.0)  # no planning ticks should fire
        assert len(controller.vrate_ctl.vrate_series) == 0

    def test_vrate_rises_when_model_pessimistic(self):
        # Model claims half the real capability; with QoS latency targets
        # set, vrate should climb towards ~2x (Figure 13 mechanics).
        sim = Simulator()
        device = Device(sim, TEST_SPEC, np.random.default_rng(0))
        pessimistic = ModelParams.from_device_spec(TEST_SPEC).scaled(0.5)
        qos = QoSParams(
            read_lat_target=1e-3,
            read_pct=90,
            vrate_min=0.25,
            vrate_max=4.0,
            period=0.025,
        )
        controller = IOCost(LinearCostModel(pessimistic), qos=qos)
        layer = BlockLayer(sim, device, controller)
        tree = CgroupTree()
        group = tree.create("a")
        Saturator(sim, layer, group, stop_at=3.0).start()
        sim.run(until=3.0)
        assert controller.vrate > 1.5
        achieved = layer.iops_of(group) / 3.0
        assert achieved > 0.7 * PEAK_IOPS


class TestOversizedIOs:
    def test_large_bios_at_small_hweight_progress_at_fair_rate(self):
        # A 1 MiB write at a small hweight has a relative cost far above
        # the budget cap; it must still flow at the group's fair byte rate
        # instead of stalling forever.
        sim, layer, controller, tree = make_env()
        small = tree.create("small", weight=25)
        big = tree.create("big", weight=475)
        Saturator(sim, layer, big, stop_at=2.0, seed=1).start()

        outstanding = {"n": 0}

        def issue(_value=None):
            if sim.now >= 2.0:
                return
            outstanding["n"] += 1
            bio = Bio(IOOp.WRITE, 1 << 20, 8 * outstanding["n"] * 4096, small)
            layer.submit(bio).wait(done)

        def done(_bio):
            issue()

        issue()
        sim.run(until=2.0)
        # Fair share: 5% of 1 GB/s write bandwidth = ~50 MB/s => ~100 MiB
        # in 2s => ~100 bios of 1 MiB.
        completed = layer.completed_by_cgroup.get("small", 0)
        assert completed > 50  # far from stalled
        # And it must not exceed ~2x its fair share either.
        assert completed < 250


class TestDonorWedgeRegression:
    def test_bursting_donor_never_wedges_on_donated_weight(self):
        # Regression: a group donated down to a tiny effective weight used
        # to be able to issue a bio at an astronomically inflated relative
        # cost (if its banked budget covered the cap), wedging it with
        # hours of negative budget.  It must rescind first and keep
        # flowing at its fair rate.
        sim, layer, controller, tree = make_env()
        busy = tree.create("busy", weight=100)
        quiet = tree.create("quiet", weight=100)
        Saturator(sim, layer, busy, stop_at=3.0, seed=1).start()
        # quiet trickles (becomes a deep donor), then bursts periodically.
        PacedIssuer(sim, layer, quiet, rate=50, stop_at=3.0, seed=2).start()

        def burst():
            for index in range(64):
                bio = Bio(IOOp.READ, 65536, (index + 1) * 8192, quiet)
                layer.submit(bio)

        for at in (0.4, 1.2, 2.0):
            sim.schedule(at, burst)
        sim.run(until=3.0)
        state = controller.tree.lookup("quiet")
        # Budget deficit is bounded (no runaway vtime), and the bursts
        # actually completed.
        deficit = state.local_vtime - controller.clock.now()
        assert deficit < 1.0
        assert layer.completed_by_cgroup.get("quiet", 0) > 150
