"""Tests for the §3.6 budget-donation weight-tree update.

The centrepiece reproduces the paper's Figure 8 worked example: donors B
and H free 0.25 hweight in total, which flows to E, F, G proportionally to
their original hweights 0.16 : 0.04 : 0.35, i.e. gains of 0.07, 0.02, 0.16.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgroup import CgroupTree
from repro.core.donation import compute_donations
from repro.core.hierarchy import WeightTree


def build_active(weights):
    cgroups = CgroupTree()
    tree = WeightTree()
    states = {}
    for path, weight in weights.items():
        group = cgroups.get_or_create(path, weight=weight)
        group.weight = weight
        states[path] = tree.state_of(group)
    for state in states.values():
        if not state.children:
            tree.activate(state)
    return tree, states


def figure8_tree():
    """A hierarchy realising the paper's Figure 8 hweights.

    Root children B (h=0.25), G (h=0.35), D (h=0.40); D's children
    E (h=0.16), F (h=0.04), H (h=0.20).  B and H donate down to 0.10 each,
    freeing 0.25 total.
    """
    return build_active(
        {
            "B": 25,
            "G": 35,
            "D": 40,
            "D/E": 16,
            "D/F": 4,
            "D/H": 20,
        }
    )


class TestFigure8Example:
    def setup_method(self):
        self.tree, self.states = figure8_tree()
        self.result = compute_donations(
            self.tree,
            {self.states["B"]: 0.10, self.states["D/H"]: 0.10},
        )

    def hw(self, path):
        return self.tree.hweight(self.states[path])

    def test_pre_donation_hweights(self):
        tree, states = figure8_tree()
        assert tree.hweight(states["B"]) == pytest.approx(0.25)
        assert tree.hweight(states["G"]) == pytest.approx(0.35)
        assert tree.hweight(states["D/E"]) == pytest.approx(0.16)
        assert tree.hweight(states["D/F"]) == pytest.approx(0.04)
        assert tree.hweight(states["D/H"]) == pytest.approx(0.20)

    def test_donated_total(self):
        assert self.result.donated_total == pytest.approx(0.25)

    def test_donors_keep_their_targets(self):
        assert self.hw("B") == pytest.approx(0.10)
        assert self.hw("D/H") == pytest.approx(0.10)

    def test_paper_gains_for_e_f_g(self):
        # Paper: "resulting in a donation of 0.07, 0.02, and 0.16 to E, F,
        # and G, respectively" (rounded; exact: 0.0727, 0.0182, 0.1591).
        assert self.hw("D/E") == pytest.approx(0.16 + 0.0727, abs=2e-3)
        assert self.hw("D/F") == pytest.approx(0.04 + 0.0182, abs=2e-3)
        assert self.hw("G") == pytest.approx(0.35 + 0.1591, abs=2e-3)

    def test_gains_proportional_to_original_hweights(self):
        gain_e = self.hw("D/E") - 0.16
        gain_f = self.hw("D/F") - 0.04
        gain_g = self.hw("G") - 0.35
        assert gain_e / gain_f == pytest.approx(0.16 / 0.04, rel=1e-6)
        assert gain_g / gain_e == pytest.approx(0.35 / 0.16, rel=1e-6)

    def test_total_hweight_conserved(self):
        total = sum(self.hw(p) for p in ("B", "G", "D/E", "D/F", "D/H"))
        assert total == pytest.approx(1.0)

    def test_non_donor_weights_untouched(self):
        # The efficiency claim: only nodes on donor paths get new weights.
        assert self.states["G"].weight_eff == 35.0
        assert self.states["D/E"].weight_eff == 16.0
        assert self.states["D/F"].weight_eff == 4.0
        assert "G" not in self.result.weight_after
        assert "D/E" not in self.result.weight_after

    def test_donor_path_weights_updated(self):
        assert "B" in self.result.weight_after
        assert "D" in self.result.weight_after
        assert "D/H" in self.result.weight_after
        # From the hand calculation: w'_B = 6.875, w'_D = 26.875.
        assert self.states["B"].weight_eff == pytest.approx(6.875)
        assert self.states["D"].weight_eff == pytest.approx(26.875)
        assert self.states["D/H"].weight_eff == pytest.approx(6.875)

    def test_donors_marked(self):
        assert self.states["B"].donating
        assert self.states["D/H"].donating
        assert not self.states["G"].donating


class TestEdgeCases:
    def test_no_donors_is_noop(self):
        tree, states = build_active({"a": 100, "b": 100})
        result = compute_donations(tree, {})
        assert result.donated_total == 0.0
        assert tree.hweight(states["a"]) == pytest.approx(0.5)

    def test_target_above_current_hweight_rejected(self):
        tree, states = build_active({"a": 100, "b": 100})
        with pytest.raises(ValueError):
            compute_donations(tree, {states["a"]: 0.9})

    def test_single_level_donation(self):
        tree, states = build_active({"a": 100, "b": 100})
        compute_donations(tree, {states["a"]: 0.1})
        assert tree.hweight(states["a"]) == pytest.approx(0.1)
        assert tree.hweight(states["b"]) == pytest.approx(0.9)

    def test_all_leaves_donating(self):
        tree, states = build_active({"a": 100, "b": 100})
        compute_donations(tree, {states["a"]: 0.2, states["b"]: 0.3})
        assert tree.hweight(states["a"]) == pytest.approx(0.2 / 0.5, rel=0.01)
        assert tree.hweight(states["b"]) == pytest.approx(0.3 / 0.5, rel=0.01)

    def test_donation_then_refresh_restores(self):
        tree, states = build_active({"a": 100, "b": 100})
        compute_donations(tree, {states["a"]: 0.1})
        tree.refresh_base_weights()
        assert tree.hweight(states["a"]) == pytest.approx(0.5)


@st.composite
def donation_scenarios(draw):
    """Random two-level hierarchies with a random subset of donor leaves."""
    top_count = draw(st.integers(min_value=2, max_value=4))
    spec = {}
    leaves = []
    for index in range(top_count):
        name = f"t{index}"
        spec[name] = draw(st.integers(min_value=1, max_value=500))
        has_children = draw(st.booleans())
        if has_children:
            child_count = draw(st.integers(min_value=1, max_value=3))
            for c in range(child_count):
                path = f"{name}/c{c}"
                spec[path] = draw(st.integers(min_value=1, max_value=500))
                leaves.append(path)
        else:
            leaves.append(name)
    donor_flags = draw(
        st.lists(st.booleans(), min_size=len(leaves), max_size=len(leaves))
    )
    keep_fracs = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=0.9),
            min_size=len(leaves),
            max_size=len(leaves),
        )
    )
    donors = {
        leaf: frac
        for leaf, flag, frac in zip(leaves, donor_flags, keep_fracs)
        if flag
    }
    return spec, leaves, donors


class TestDonationProperties:
    @given(scenario=donation_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, scenario):
        spec, leaves, donors = scenario
        if len(donors) == len(leaves):
            donors = dict(list(donors.items())[:-1])  # keep one non-donor
        tree, states = build_active(spec)
        pre = {leaf: tree.hweight(states[leaf]) for leaf in leaves}
        targets = {
            states[leaf]: pre[leaf] * frac for leaf, frac in donors.items()
        }
        compute_donations(tree, targets)
        post = {leaf: tree.hweight(states[leaf]) for leaf in leaves}

        # Total active hweight is conserved.
        assert sum(post.values()) == pytest.approx(1.0, abs=1e-6)
        for leaf in leaves:
            if leaf in donors:
                # Donors land on their targets.
                assert post[leaf] == pytest.approx(
                    pre[leaf] * donors[leaf], rel=1e-4, abs=1e-9
                )
            else:
                # Non-donors never lose budget.
                assert post[leaf] >= pre[leaf] - 1e-9

    @given(scenario=donation_scenarios())
    @settings(max_examples=50, deadline=None)
    def test_non_donor_gains_proportional(self, scenario):
        spec, leaves, donors = scenario
        if len(donors) == len(leaves):
            donors = dict(list(donors.items())[:-1])
        non_donors = [leaf for leaf in leaves if leaf not in donors]
        if len(non_donors) < 2 or not donors:
            return
        tree, states = build_active(spec)
        pre = {leaf: tree.hweight(states[leaf]) for leaf in leaves}
        targets = {states[leaf]: pre[leaf] * frac for leaf, frac in donors.items()}
        compute_donations(tree, targets)
        gains = {
            leaf: tree.hweight(states[leaf]) - pre[leaf] for leaf in non_donors
        }
        ratios = [
            gains[leaf] / pre[leaf] for leaf in non_donors if pre[leaf] > 1e-9
        ]
        for ratio in ratios[1:]:
            assert ratio == pytest.approx(ratios[0], rel=1e-3, abs=1e-6)
