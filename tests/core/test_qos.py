"""Tests for QoS parameters and the vrate controller."""

import pytest

from repro.analysis.stats import LatencyWindow
from repro.core.qos import QoSParams, VRateController
from repro.core.vtime import VTimeClock
from repro.sim import Simulator


def make_ctl(**qos_kwargs):
    sim = Simulator()
    qos = QoSParams(**qos_kwargs)
    clock = VTimeClock(sim)
    return sim, clock, VRateController(clock, qos)


def fill(window, now, value, count=200):
    for _ in range(count):
        window.record(now, value)


class TestQoSParams:
    def test_defaults_valid(self):
        params = QoSParams()
        assert params.vrate_min < params.vrate_max

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0.0},
            {"vrate_min": 0.0},
            {"vrate_min": 2.0, "vrate_max": 1.0},
            {"read_pct": 0.0},
            {"write_pct": 101.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QoSParams(**kwargs)


class TestVRateAdjustment:
    def test_starved_and_unsaturated_raises_vrate(self):
        sim, clock, ctl = make_ctl(read_lat_target=1e-3)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 100e-6)  # well under target
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.1, budget_starved=True)
        assert new == pytest.approx(1.05)
        assert ctl.starvation_events == 1

    def test_not_starved_holds_vrate(self):
        sim, clock, ctl = make_ctl(read_lat_target=1e-3)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 100e-6)
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.1, budget_starved=False)
        assert new == pytest.approx(1.0)

    def test_latency_violation_cuts_vrate(self):
        sim, clock, ctl = make_ctl(read_lat_target=1e-3, read_pct=90)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 4e-3)  # 4x over target
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.1, budget_starved=True)
        assert new < 1.0
        assert ctl.saturation_events == 1

    def test_cut_proportional_to_excess_but_bounded(self):
        sim, clock, ctl = make_ctl(read_lat_target=1e-3)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 100e-3)  # 100x over target
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.0, budget_starved=False)
        assert new == pytest.approx(VRateController.MAX_CUT)

    def test_slot_depletion_counts_as_saturation(self):
        sim, clock, ctl = make_ctl(read_lat_target=None, write_lat_target=None)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.99, budget_starved=True)
        assert new == pytest.approx(0.9)

    def test_disabled_targets_never_violate(self):
        sim, clock, ctl = make_ctl(read_lat_target=None, write_lat_target=None)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 10.0)  # huge latencies, but targets disabled
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.1, budget_starved=True)
        assert new == pytest.approx(1.05)

    def test_vrate_clamped_to_bounds(self):
        sim, clock, ctl = make_ctl(
            read_lat_target=1e-3, vrate_min=0.5, vrate_max=1.2
        )
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 50e-6)
        for _ in range(20):
            ctl.adjust(0.0, reads, writes, slot_utilization=0.0, budget_starved=True)
        assert clock.vrate == pytest.approx(1.2)
        reads.clear()
        fill(reads, 0.0, 1.0)
        for _ in range(40):
            ctl.adjust(0.0, reads, writes, slot_utilization=0.0, budget_starved=False)
        assert clock.vrate == pytest.approx(0.5)

    def test_series_recorded(self):
        sim, clock, ctl = make_ctl()
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        fill(reads, 0.0, 1e-4)
        ctl.adjust(0.0, reads, writes, slot_utilization=0.0, budget_starved=False)
        assert len(ctl.vrate_series) == 1
        assert len(ctl.read_lat_series) == 1

    def test_empty_windows_no_violation(self):
        sim, clock, ctl = make_ctl(read_lat_target=1e-6)
        reads, writes = LatencyWindow(1.0), LatencyWindow(1.0)
        new = ctl.adjust(0.0, reads, writes, slot_utilization=0.0, budget_starved=True)
        assert new == pytest.approx(1.05)
