"""Tests for the §3.5 debt mechanism primitives."""

import pytest

from repro.cgroup import CgroupTree
from repro.core.debt import DebtConfig, DebtTracker, SwapChargeMode
from repro.core.hierarchy import WeightTree
from repro.core.vtime import VTimeClock
from repro.sim import Simulator


def make_env(vrate=1.0, **config_kwargs):
    sim = Simulator()
    clock = VTimeClock(sim, vrate=vrate)
    tracker = DebtTracker(clock, DebtConfig(**config_kwargs))
    group = WeightTree().state_of(CgroupTree().create("a"))
    return sim, clock, tracker, group


def test_no_debt_when_local_behind_global():
    sim, clock, tracker, group = make_env()
    sim.run(until=1.0)
    group.local_vtime = 0.5  # has budget
    assert tracker.debt_vtime(group) == 0.0
    assert tracker.debt_walltime(group) == 0.0


def test_debt_is_local_ahead_of_global():
    sim, clock, tracker, group = make_env()
    sim.run(until=1.0)
    group.local_vtime = 1.4
    assert tracker.debt_vtime(group) == pytest.approx(0.4)
    assert tracker.debt_walltime(group) == pytest.approx(0.4)


def test_debt_walltime_scales_with_vrate():
    sim, clock, tracker, group = make_env(vrate=2.0)
    group.local_vtime = clock.now() + 1.0
    assert tracker.debt_walltime(group) == pytest.approx(0.5)


def test_no_delay_under_threshold():
    sim, clock, tracker, group = make_env(threshold=0.1)
    group.local_vtime = clock.now() + 0.05
    assert tracker.userspace_delay(group) == 0.0
    assert tracker.userspace_blocks == 0


def test_delay_fraction_of_owed_time():
    sim, clock, tracker, group = make_env(
        threshold=0.01, max_delay=10.0, delay_fraction=0.5
    )
    group.local_vtime = clock.now() + 0.2
    assert tracker.userspace_delay(group) == pytest.approx(0.1)
    assert tracker.userspace_blocks == 1
    assert tracker.total_blocked_time == pytest.approx(0.1)


def test_delay_capped_at_max():
    sim, clock, tracker, group = make_env(threshold=0.01, max_delay=0.25)
    group.local_vtime = clock.now() + 100.0
    assert tracker.userspace_delay(group) == pytest.approx(0.25)


def test_debt_decays_as_global_vtime_progresses():
    sim, clock, tracker, group = make_env()
    group.local_vtime = 0.5
    assert tracker.debt_vtime(group) == pytest.approx(0.5)
    sim.run(until=0.3)
    assert tracker.debt_vtime(group) == pytest.approx(0.2)
    sim.run(until=1.0)
    assert tracker.debt_vtime(group) == 0.0


def test_swap_charge_modes_enumerated():
    assert SwapChargeMode.DEBT.value == "debt"
    assert SwapChargeMode.ROOT.value == "root"
    assert SwapChargeMode.ORIGIN_THROTTLE.value == "origin_throttle"
