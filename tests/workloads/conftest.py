"""Shared fixtures for workload tests."""

import numpy as np
import pytest

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree, make_meta_hierarchy
from repro.controllers.noop import NoopController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.mm.memory import MemoryManager
from repro.sim import Simulator

MB = 1024 * 1024

WL_SPEC = DeviceSpec(
    name="wl",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.0,
    nr_slots=64,
)


def make_noop_env(spec=WL_SPEC, seed=0):
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(seed))
    layer = BlockLayer(sim, device, NoopController())
    tree = CgroupTree()
    return sim, layer, tree


def make_iocost_env(spec=WL_SPEC, seed=0, total_mem=128 * MB, **iocost_kwargs):
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(seed))
    qos = iocost_kwargs.pop(
        "qos",
        QoSParams(
            read_lat_target=None,
            write_lat_target=None,
            vrate_min=1.0,
            vrate_max=1.0,
            period=0.025,
        ),
    )
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(spec)), qos=qos, **iocost_kwargs
    )
    layer = BlockLayer(sim, device, controller)
    tree = make_meta_hierarchy()
    mm = MemoryManager(sim, layer, total_bytes=total_mem, swap_bytes=32 * total_mem)
    return sim, layer, controller, tree, mm
