"""Tests for workload base helpers."""

import numpy as np
import pytest

from repro.workloads.base import SectorPicker, Workload

from tests.workloads.conftest import make_noop_env


class TestSectorPicker:
    def test_sequential_is_contiguous(self):
        picker = SectorPicker(np.random.default_rng(0), sequential=True)
        first = picker.next(4096)
        second = picker.next(4096)
        assert second == first + 8
        third = picker.next(65536)
        assert third == second + 8

    def test_random_is_page_aligned_and_spread(self):
        picker = SectorPicker(np.random.default_rng(0), sequential=False)
        sectors = [picker.next(4096) for _ in range(100)]
        assert all(sector % 8 == 0 for sector in sectors)
        assert len(set(sectors)) > 95  # effectively no repeats

    def test_deterministic_given_seed(self):
        a = SectorPicker(np.random.default_rng(7), sequential=False)
        b = SectorPicker(np.random.default_rng(7), sequential=False)
        assert [a.next(4096) for _ in range(10)] == [b.next(4096) for _ in range(10)]


class TestWorkloadBase:
    def test_latency_summary_requires_data(self):
        sim, layer, tree = make_noop_env()
        workload = Workload(sim, layer, tree.create("a"))
        with pytest.raises(ValueError):
            workload.latency_summary()

    def test_recent_percentile_none_when_empty(self):
        sim, layer, tree = make_noop_env()
        workload = Workload(sim, layer, tree.create("a"))
        assert workload.recent_percentile(50) is None

    def test_recent_percentile_windows_last_n(self):
        sim, layer, tree = make_noop_env()
        workload = Workload(sim, layer, tree.create("a"))
        workload.latencies = [1.0] * 100 + [2.0] * 100
        assert workload.recent_percentile(50, last=100) == 2.0
        assert workload.recent_percentile(50, last=200) in (1.0, 2.0)

    def test_iops_helper(self):
        sim, layer, tree = make_noop_env()
        workload = Workload(sim, layer, tree.create("a"))
        workload.completed = 500
        assert workload.iops(2.0) == 250.0
