"""Tests for the Figure 4 workload profiles."""

import pytest

from repro.workloads.profiles import MixedWorkload, WORKLOAD_PROFILES

from tests.workloads.conftest import make_noop_env


def test_profiles_present():
    assert {"web_a", "web_b", "serverless", "cache_a", "cache_b"} <= set(WORKLOAD_PROFILES)


def test_paper_shape_anchors():
    # Caches are sequential-heavy; non-storage services do little IO.
    web = WORKLOAD_PROFILES["web_a"]
    cache = WORKLOAD_PROFILES["cache_a"]
    nonstorage = WORKLOAD_PROFILES["nonstorage_a"]
    assert cache.seq_bps > 5 * cache.rand_bps
    assert 0.4 <= web.random_fraction <= 0.6  # "mixed about equally"
    assert nonstorage.read_bps + nonstorage.write_bps < 0.1 * (
        web.read_bps + web.write_bps
    )


def test_mixed_workload_hits_profile_rates():
    sim, layer, tree = make_noop_env()
    group = tree.create("web")
    profile = WORKLOAD_PROFILES["web_a"]
    workload = MixedWorkload(sim, layer, group, profile, stop_at=2.0).start()
    sim.run(until=2.2)
    total_bps = workload.bytes_done / 2.0
    expected = profile.read_bps + profile.write_bps
    assert total_bps == pytest.approx(expected, rel=0.1)


def test_mixed_workload_class_split():
    sim, layer, tree = make_noop_env()
    group = tree.create("cache")
    profile = WORKLOAD_PROFILES["cache_a"]
    workload = MixedWorkload(sim, layer, group, profile, stop_at=2.0).start()
    sim.run(until=2.2)
    seq_bytes = sum(
        count for (is_w, seq), count in workload.bytes_by_class.items() if seq
    )
    rand_bytes = sum(
        count for (is_w, seq), count in workload.bytes_by_class.items() if not seq
    )
    observed_rand_frac = rand_bytes / (seq_bytes + rand_bytes)
    assert observed_rand_frac == pytest.approx(profile.random_fraction, abs=0.05)


def test_read_write_split():
    sim, layer, tree = make_noop_env()
    group = tree.create("web")
    profile = WORKLOAD_PROFILES["web_b"]
    workload = MixedWorkload(sim, layer, group, profile, stop_at=2.0).start()
    sim.run(until=2.2)
    read_bytes = sum(
        count for (is_w, _), count in workload.bytes_by_class.items() if not is_w
    )
    write_bytes = sum(
        count for (is_w, _), count in workload.bytes_by_class.items() if is_w
    )
    assert read_bytes / write_bytes == pytest.approx(
        profile.read_bps / profile.write_bps, rel=0.15
    )
