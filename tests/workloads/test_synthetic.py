"""Tests for the fio-style synthetic workloads."""

import pytest

from repro.block.bio import IOOp
from repro.workloads.synthetic import (
    ClosedLoopWorkload,
    LatencyGovernedWorkload,
    PacedWorkload,
    ThinkTimeWorkload,
)

from tests.workloads.conftest import WL_SPEC, make_noop_env


class TestClosedLoop:
    def test_saturates_device(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = ClosedLoopWorkload(sim, layer, group, depth=16, stop_at=0.2).start()
        sim.run(until=0.25)
        assert workload.iops(0.2) == pytest.approx(WL_SPEC.peak_rand_read_iops, rel=0.05)

    def test_stop_method_halts(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = ClosedLoopWorkload(sim, layer, group, depth=4).start()
        sim.run(until=0.05)
        workload.stop()
        done = workload.completed
        sim.run(until=0.2)
        # Only in-flight IOs finish after stop.
        assert workload.completed <= done + 4

    def test_sequential_mode_streams(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = ClosedLoopWorkload(
            sim, layer, group, depth=1, sequential=True, stop_at=0.05
        ).start()
        sim.run(until=0.1)
        # All IOs after the first should be cgroup-sequential → the device
        # sequential stream gives the same 4k service; just sanity-check
        # completions happened and latencies are tight.
        assert workload.completed > 100
        assert max(workload.latencies) < 1e-3

    def test_latency_summary(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = ClosedLoopWorkload(sim, layer, group, depth=4, stop_at=0.05).start()
        sim.run(until=0.1)
        summary = workload.latency_summary()
        assert summary.count == workload.completed
        assert summary.p50 <= summary.p99 <= summary.maximum


class TestPaced:
    def test_open_loop_rate(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = PacedWorkload(sim, layer, group, rate=2000, stop_at=0.5).start()
        sim.run(until=0.6)
        assert workload.completed == pytest.approx(1000, rel=0.05)

    def test_invalid_rate(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        with pytest.raises(ValueError):
            PacedWorkload(sim, layer, group, rate=0)


class TestThinkTime:
    def test_throughput_set_by_latency_plus_think(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = ThinkTimeWorkload(
            sim, layer, group, think_time=100e-6, stop_at=0.5
        ).start()
        sim.run(until=0.6)
        # Serial: one IO per (service 100us + think 100us) = 5000/s.
        assert workload.iops(0.5) == pytest.approx(5000, rel=0.05)


class TestLatencyGoverned:
    def test_sheds_load_when_latency_high(self):
        # A slow contended device: the workload should shrink depth to 1.
        from repro.block.device import DeviceSpec

        slow = DeviceSpec(
            name="slow",
            parallelism=1,
            srv_rand_read=400e-6,
            srv_seq_read=400e-6,
            srv_rand_write=400e-6,
            srv_seq_write=400e-6,
            read_bw=1e9,
            write_bw=1e9,
            sigma=0.0,
            nr_slots=64,
        )
        sim, layer, tree = make_noop_env(spec=slow)
        group = tree.create("a")
        workload = LatencyGovernedWorkload(
            sim, layer, group, latency_target=200e-6, stop_at=2.0
        ).start()
        sim.run(until=2.0)
        assert workload.depth == 1

    def test_grows_depth_when_latency_low(self):
        sim, layer, tree = make_noop_env()  # 100us service, target 200us
        group = tree.create("a")
        workload = LatencyGovernedWorkload(
            sim, layer, group, latency_target=2e-3, stop_at=1.0
        ).start()
        sim.run(until=1.0)
        assert workload.depth > 4

    def test_respects_max_depth(self):
        sim, layer, tree = make_noop_env()
        group = tree.create("a")
        workload = LatencyGovernedWorkload(
            sim, layer, group, latency_target=1.0, max_depth=8, stop_at=1.0
        ).start()
        sim.run(until=1.0)
        assert workload.depth <= 8
