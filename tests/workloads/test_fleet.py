"""Tests for the fleet-migration model."""

import pytest

from repro.block.device import DeviceSpec
from repro.controllers.iolatency import IOLatencyController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.workloads.fleet import (
    CONTAINER_CLEANUP,
    PACKAGE_FETCH,
    FleetMigration,
    WeeklyReport,
    run_task_once,
)

FLEET_SPEC = DeviceSpec(
    name="fleetdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.1,
    nr_slots=64,
)


def iocost_factory():
    return IOCost(
        LinearCostModel(ModelParams.from_device_spec(FLEET_SPEC)),
        qos=QoSParams(read_lat_target=5e-3, read_pct=90, period=0.05),
    )


def iolatency_factory():
    # Tuned the way production was: protect the main workload's latency
    # aggressively; system/hostcritical slices are unprotected and get
    # their queue depth crushed whenever the workload misses its target.
    return IOLatencyController({"workload.slice/main": 0.5e-3})


class TestRunTaskOnce:
    def test_task_completes_under_iocost(self):
        duration = run_task_once(
            FLEET_SPEC, iocost_factory, CONTAINER_CLEANUP, workload_depth=32, seed=1
        )
        assert 0 < duration < CONTAINER_CLEANUP.deadline

    def test_iolatency_starves_system_task(self):
        ours = run_task_once(
            FLEET_SPEC, iocost_factory, CONTAINER_CLEANUP, workload_depth=32, seed=1
        )
        theirs = run_task_once(
            FLEET_SPEC, iolatency_factory, CONTAINER_CLEANUP, workload_depth=32, seed=1
        )
        assert theirs > 2 * ours

    def test_package_fetch_runs(self):
        duration = run_task_once(
            FLEET_SPEC, iocost_factory, PACKAGE_FETCH, workload_depth=16, seed=2
        )
        assert duration > 0


class TestFleetMigration:
    def test_failures_fall_with_migration(self):
        # Old stack durations straddle the deadline; new stack is fast.
        old = [3.0, 6.0, 8.0, 4.5, 7.0, 5.5]
        new = [0.5, 0.8, 1.2, 0.6, 0.9, 0.7]
        sim = FleetMigration(old, new, deadline=5.0, machines=500, seed=3)
        reports = sim.run([0.0, 0.25, 0.5, 0.75, 1.0])
        assert len(reports) == 5
        assert reports[0].failures > 0
        assert reports[-1].failures < reports[0].failures / 3
        rates = [report.failure_rate for report in reports]
        # Failure rate should be (weakly) monotone decreasing.
        assert all(b <= a * 1.2 for a, b in zip(rates, rates[1:]))

    def test_empty_distributions_rejected(self):
        with pytest.raises(ValueError):
            FleetMigration([], [1.0], deadline=1.0)

    def test_weekly_report_rate(self):
        report = WeeklyReport(week=0, migrated_fraction=0.0, attempts=100, failures=7)
        assert report.failure_rate == pytest.approx(0.07)
