"""Tests for ResourceControlBench, memory antagonists, and the PID ramp."""

import pytest

from repro.workloads.memleak import MemoryLeaker, StressWorkload
from repro.workloads.pid import LoadRamp, PIDController
from repro.workloads.rcbench import ResourceControlBench, WebServer

from tests.workloads.conftest import MB, make_iocost_env


class TestRCBench:
    def test_serves_requests_at_target_load(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=256 * MB)
        group = tree.get_or_create("workload.slice/bench", weight=500)
        bench = ResourceControlBench(
            sim, layer, mm, group,
            peak_rps=400, load=0.5, working_set=64 * MB, stop_at=5.0,
        ).start()
        sim.run(until=5.0)
        achieved = bench.requests_done / 5.0
        assert achieved == pytest.approx(200, rel=0.1)

    def test_latency_low_when_memory_fits(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=256 * MB)
        group = tree.get_or_create("workload.slice/bench", weight=500)
        bench = ResourceControlBench(
            sim, layer, mm, group,
            peak_rps=400, load=0.5, working_set=64 * MB, stop_at=3.0,
        ).start()
        sim.run(until=3.0)
        assert bench.request_percentile(95) < 20e-3

    def test_load_setter_scales_throughput(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=256 * MB)
        group = tree.get_or_create("workload.slice/bench", weight=500)
        bench = ResourceControlBench(
            sim, layer, mm, group,
            peak_rps=400, load=0.25, working_set=32 * MB, stop_at=6.0,
        ).start()
        sim.run(until=3.0)
        first_half = bench.requests_done
        bench.load = 0.75
        sim.run(until=6.0)
        second_half = bench.requests_done - first_half
        assert second_half > 2 * first_half

    def test_rps_series_recorded(self):
        sim, layer, controller, tree, mm = make_iocost_env()
        group = tree.get_or_create("workload.slice/bench", weight=500)
        bench = ResourceControlBench(
            sim, layer, mm, group, peak_rps=200, working_set=16 * MB, stop_at=3.0
        ).start()
        sim.run(until=3.0)
        assert len(bench.rps_series) > 3

    def test_webserver_presets(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=1024 * MB)
        group = tree.get_or_create("workload.slice/web", weight=500)
        web = WebServer(sim, layer, mm, group, stop_at=2.0)
        assert web.peak_rps == 800.0
        web.start()
        sim.run(until=2.0)
        assert web.requests_done > 500


class TestMemoryLeaker:
    def test_leaks_until_oom(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=64 * MB)
        # Small swap so OOM arrives quickly.
        mm.swap_bytes = 64 * MB
        leaker = MemoryLeaker(
            sim, layer, mm, tree.lookup("system.slice"), rate_bps=256 * MB, stop_at=60.0
        ).start()
        sim.run(until=20.0)
        assert leaker.killed
        assert mm.oom_kills
        assert mm.oom_kills[0].cgroup_path == "system.slice"

    def test_leak_generates_swap_writes_charged_to_leaker(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=32 * MB)
        group = tree.lookup("system.slice")
        MemoryLeaker(sim, layer, mm, group, rate_bps=128 * MB, stop_at=3.0).start()
        sim.run(until=3.0)
        assert group.stats.wbytes > 0


class TestStress:
    def test_touches_and_refaults(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=64 * MB)
        stress_group = tree.get_or_create("workload.slice/stress")
        other = tree.get_or_create("workload.slice/other")
        stress = StressWorkload(
            sim, layer, mm, stress_group, working_set=48 * MB, stop_at=5.0
        ).start()
        sim.run(until=1.0)

        # Another group's allocation pushes stress pages out...
        proc = sim.process(mm.alloc(other, 40 * MB))
        while not proc.done:
            sim.step()
        assert mm.state_of(stress_group).swapped > 0
        # ...and the stress loop faults them back in.
        sim.run(until=5.0)
        assert mm.state_of(stress_group).faulted_in_total > 0


class TestPID:
    def test_pid_basic_response(self):
        pid = PIDController(kp=1.0)
        assert pid.update(error=0.5, dt=1.0) == pytest.approx(0.5)

    def test_pid_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0)
        pid.update(0.5, dt=1.0)
        assert pid.update(0.5, dt=1.0) == pytest.approx(1.0)

    def test_pid_clamps_with_antiwindup(self):
        pid = PIDController(kp=1.0, ki=1.0, output_max=0.1)
        for _ in range(10):
            out = pid.update(1.0, dt=1.0)
        assert out == 0.1
        # After clamping, a negative error responds immediately (no windup).
        assert pid.update(-1.0, dt=1.0) < 0.1

    def test_pid_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            PIDController(kp=1.0).update(0.0, dt=0.0)

    def test_ramp_reaches_end_load_unloaded(self):
        sim, layer, controller, tree, mm = make_iocost_env(total_mem=512 * MB)
        group = tree.get_or_create("workload.slice/bench", weight=500)
        bench = ResourceControlBench(
            sim, layer, mm, group,
            peak_rps=300, working_set=32 * MB, stop_at=120.0,
        ).start()
        ramp = LoadRamp(sim, bench, latency_target=75e-3, interval=0.5).start()
        sim.run(until=60.0)
        assert ramp.ramp_time is not None
        assert bench.load == pytest.approx(0.8)
