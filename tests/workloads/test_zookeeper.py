"""Tests for the ZooKeeper ensemble workload."""

import pytest

from repro.block.device import DeviceSpec
from repro.controllers.noop import NoopController
from repro.sim import Simulator
from repro.workloads.zookeeper import Machine, ZooKeeperEnsemble

ZK_SPEC = DeviceSpec(
    name="zk",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.0,
    nr_slots=64,
)


def make_cluster(n_machines=5, seed=0):
    sim = Simulator()
    machines = [
        Machine(sim, ZK_SPEC, NoopController, name=f"m{i}", seed=seed + i)
        for i in range(n_machines)
    ]
    return sim, machines


def test_reads_and_writes_complete():
    sim, machines = make_cluster()
    ensemble = ZooKeeperEnsemble(
        sim, machines, "ens0", read_rps=200, write_rps=20,
        payload=100 * 1024, stop_at=2.0, seed=1,
    ).start()
    sim.run(until=2.5)
    reads = [op for op in ensemble.ops if not op.is_write]
    writes = [op for op in ensemble.ops if op.is_write]
    assert len(reads) == pytest.approx(400, rel=0.2)
    assert len(writes) == pytest.approx(40, rel=0.3)


def test_write_commits_at_quorum_not_all():
    # With one artificially slow machine, quorum (3/5) commits must not
    # wait for the straggler.
    sim, machines = make_cluster()
    slow_spec = DeviceSpec(
        name="slowzk",
        parallelism=1,
        srv_rand_read=50e-3,
        srv_seq_read=50e-3,
        srv_rand_write=50e-3,
        srv_seq_write=50e-3,
        read_bw=10e6,
        write_bw=10e6,
        sigma=0.0,
        nr_slots=64,
    )
    machines[4] = Machine(sim, slow_spec, NoopController, name="slow", seed=99)
    ensemble = ZooKeeperEnsemble(
        sim, machines, "ens0", read_rps=0, write_rps=50,
        payload=100 * 1024, stop_at=1.0, seed=1,
    ).start()
    sim.run(until=1.5)
    writes = [op for op in ensemble.ops if op.is_write]
    assert writes
    p50 = sorted(op.latency for op in writes)[len(writes) // 2]
    assert p50 < 10e-3  # far below the straggler's 50ms service time


def test_snapshot_triggers_on_txn_count():
    sim, machines = make_cluster()
    ensemble = ZooKeeperEnsemble(
        sim, machines, "ens0", read_rps=0, write_rps=100,
        payload=10 * 1024, snapshot_every=50,
        snapshot_bytes=4 * 1024 * 1024, stop_at=2.0, seed=1,
    ).start()
    sim.run(until=2.5)
    assert ensemble.snapshots_taken >= 3
    assert ensemble.txn_count > 150


def test_participants_on_distinct_machines():
    sim, machines = make_cluster()
    ensemble = ZooKeeperEnsemble(
        sim, machines, "ens0", read_rps=10, write_rps=5,
        payload=1024, stop_at=0.5, seed=1,
    )
    paths = {id(cg) for cg in ensemble.cgroups}
    assert len(paths) == 5  # one cgroup per machine


def test_slo_violation_detection():
    sim, machines = make_cluster()
    ensemble = ZooKeeperEnsemble(
        sim, machines, "ens0", read_rps=100, write_rps=10,
        payload=10 * 1024, stop_at=5.0, seed=1,
    ).start()
    sim.run(until=5.5)
    # Uncontended: no violations of a 1s SLO.
    assert ensemble.slo_violations(slo=1.0) == []
    # Absurdly tight SLO: everything violates.
    tight = ensemble.slo_violations(slo=1e-9)
    assert tight
    total_duration = sum(duration for _, duration, _ in tight)
    assert total_duration > 0


def test_stop_halts_arrivals():
    sim, machines = make_cluster()
    ensemble = ZooKeeperEnsemble(
        sim, machines, "ens0", read_rps=100, write_rps=10,
        payload=1024, stop_at=None, seed=1,
    ).start()
    sim.run(until=0.5)
    ensemble.stop()
    count = len(ensemble.ops)
    sim.run(until=1.0)
    assert len(ensemble.ops) <= count + 20  # only in-flight stragglers
